package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestNamespaceIsolation: two tenants with different geometry serve
// disjoint key sets; v1 routes serve exactly the default tenant.
func TestNamespaceIsolation(t *testing.T) {
	srv, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	post(t, ts.URL+"/v2/namespaces", map[string]any{"name": "tenant-a", "shards": 2}, 201, nil)
	post(t, ts.URL+"/v2/namespaces", map[string]any{"name": "tenant-b", "membership_bits": 1 << 16}, 201, nil)
	// Same name again: conflict. Bad name: bad request.
	post(t, ts.URL+"/v2/namespaces", map[string]any{"name": "tenant-a"}, 409, nil)
	post(t, ts.URL+"/v2/namespaces", map[string]any{"name": "no spaces"}, 400, nil)

	post(t, ts.URL+"/v2/namespaces/tenant-a/membership/add", map[string]any{"keys": []string{"a-key"}}, 200, nil)
	post(t, ts.URL+"/v1/membership/add", map[string]any{"keys": []string{"default-key"}}, 200, nil)

	var res struct {
		Results []bool `json:"results"`
	}
	post(t, ts.URL+"/v2/namespaces/tenant-a/membership/contains",
		map[string]any{"keys": []string{"a-key", "default-key"}}, 200, &res)
	if !res.Results[0] || res.Results[1] {
		t.Fatalf("tenant-a sees %v, want [true false]", res.Results)
	}
	post(t, ts.URL+"/v1/membership/contains",
		map[string]any{"keys": []string{"a-key", "default-key"}}, 200, &res)
	if res.Results[0] || !res.Results[1] {
		t.Fatalf("default sees %v, want [false true]", res.Results)
	}
	post(t, ts.URL+"/v2/namespaces/tenant-b/membership/contains",
		map[string]any{"keys": []string{"a-key", "default-key"}}, 200, &res)
	if res.Results[0] || res.Results[1] {
		t.Fatalf("tenant-b sees %v, want [false false]", res.Results)
	}

	// Unknown namespace → 404; delete → gone; default undeletable.
	post(t, ts.URL+"/v2/namespaces/ghost/membership/add", map[string]any{"keys": []string{"x"}}, 404, nil)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v2/namespaces/tenant-b", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	post(t, ts.URL+"/v2/namespaces/tenant-b/membership/add", map[string]any{"keys": []string{"x"}}, 404, nil)
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v2/namespaces/default", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 409 {
		t.Fatalf("delete default: status %d, want 409", resp.StatusCode)
	}

	// List + daemon stats name the remaining tenants.
	var list struct {
		Namespaces []NamespaceInfo `json:"namespaces"`
	}
	get(t, ts.URL+"/v2/namespaces", &list)
	names := make([]string, len(list.Namespaces))
	for i, in := range list.Namespaces {
		names[i] = in.Name
	}
	if strings.Join(names, ",") != "default,tenant-a" {
		t.Fatalf("namespaces = %v", names)
	}
}

// TestSnapshotV3MultiTenant: a snapshot with several tenants — classic
// and windowed, divergent geometry — restores the whole set with
// state, window positions, and tenant isolation intact.
func TestSnapshotV3MultiTenant(t *testing.T) {
	cfg := testConfig()
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "state.shbf")
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.CreateNamespace(NamespaceConfig{Name: "classic", Shards: 2}); err != nil {
		t.Fatal(err)
	}
	g := 3
	if err := srv.CreateNamespace(NamespaceConfig{Name: "ring", WindowGenerations: &g}); err != nil {
		t.Fatal(err)
	}
	classic, _ := srv.lookup("classic")
	ring, _ := srv.lookup("ring")
	classic.mem.Add([]byte("classic-key"))
	ring.mem.Add([]byte("old-key"))
	if _, err := srv.rotate(ring); err != nil {
		t.Fatal(err)
	}
	ring.mem.Add([]byte("new-key"))
	if err := ring.mult.Insert([]byte("ring-flow")); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.SaveSnapshot(cfg.SnapshotPath); err != nil {
		t.Fatal(err)
	}

	restored, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := restored.lookup("classic")
	if err != nil {
		t.Fatal(err)
	}
	rr, err := restored.lookup("ring")
	if err != nil {
		t.Fatal(err)
	}
	if !rc.mem.Contains([]byte("classic-key")) || rc.mem.Contains([]byte("new-key")) {
		t.Fatal("classic tenant state lost or polluted")
	}
	if !rr.mem.Contains([]byte("old-key")) || !rr.mem.Contains([]byte("new-key")) {
		t.Fatal("ring tenant state lost")
	}
	if rr.mult.Count([]byte("ring-flow")) != 1 {
		t.Fatal("ring multiplicity lost")
	}
	if !rr.windowed() || rc.windowed() {
		t.Fatal("window mode not preserved per tenant")
	}
	// The restored ring resumes at its epoch: G−1 more rotations
	// expire old-key (written before one rotation already).
	for i := 0; i < g-1; i++ {
		if _, err := restored.rotate(rr); err != nil {
			t.Fatal(err)
		}
	}
	if rr.mem.Contains([]byte("old-key")) {
		t.Fatal("restored ring forgot its head position")
	}
}

// TestRotationConsistentSnapshot: with rotation_consistent set, a
// snapshot cut while rotations hammer the daemon always captures the
// three filters of a windowed namespace at one epoch.
func TestRotationConsistentSnapshot(t *testing.T) {
	cfg := testConfig()
	cfg.WindowGenerations = 4
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "state.shbf")
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := srv.Rotate(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for i := 0; i < 20; i++ {
		if _, err := srv.SaveSnapshotOpts(cfg.SnapshotPath, true); err != nil {
			t.Fatal(err)
		}
		restored, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		def := restored.defaultNS()
		st := restored.statsFor(def)
		epochs := []uint64{
			st.Membership.Window.Epoch,
			st.Association.Window.Epoch,
			st.Multiplicity.Window.Epoch,
		}
		if epochs[0] != epochs[1] || epochs[1] != epochs[2] {
			t.Fatalf("snapshot %d captured adjacent epochs %v", i, epochs)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotRequestValidation: the snapshot endpoints accept empty
// bodies, {}, and the rotation_consistent option, and reject unknown
// fields.
func TestSnapshotRequestValidation(t *testing.T) {
	cfg := testConfig()
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "state.shbf")
	ts := newTestServer(t, cfg)
	// Empty body (no JSON at all).
	resp, err := http.Post(ts.URL+"/v1/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("empty body: status %d", resp.StatusCode)
	}
	post(t, ts.URL+"/v1/snapshot", map[string]any{}, 200, nil)
	post(t, ts.URL+"/v2/snapshot", map[string]any{"rotation_consistent": true}, 200, nil)
	post(t, ts.URL+"/v1/snapshot", map[string]any{"rotation_consistent": true}, 200, nil)
	// v2 validates strictly; v1 stays lenient (the pre-namespace daemon
	// never read the body, so garbage must keep snapshotting).
	post(t, ts.URL+"/v2/snapshot", map[string]any{"unknown_option": 1}, 400, nil)
	post(t, ts.URL+"/v1/snapshot", map[string]any{"unknown_option": 1}, 200, nil)
	resp, err = http.Post(ts.URL+"/v1/snapshot", "text/plain", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("v1 snapshot with non-JSON body: status %d, want 200 (lenient shim)", resp.StatusCode)
	}
}

// TestV2StatsAndNamespaceStats: per-tenant stats isolate counters; the
// daemon stats roll up tenant summaries.
func TestV2StatsAndNamespaceStats(t *testing.T) {
	ts := newTestServer(t, testConfig())
	post(t, ts.URL+"/v2/namespaces", map[string]any{"name": "t"}, 201, nil)
	keys := make([]string, 10)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	post(t, ts.URL+"/v2/namespaces/t/membership/add", map[string]any{"keys": keys}, 200, nil)

	var st Stats
	get(t, ts.URL+"/v2/namespaces/t/stats", &st)
	if st.Membership.N != 10 || st.Queries["membership_add"] != 10 {
		t.Fatalf("tenant stats: n=%d queries=%v", st.Membership.N, st.Queries)
	}
	get(t, ts.URL+"/v1/stats", &st)
	if st.Membership.N != 0 || st.Queries["membership_add"] != 0 {
		t.Fatalf("tenant counters leaked into default: n=%d queries=%v", st.Membership.N, st.Queries)
	}
	var daemon struct {
		UptimeSeconds float64         `json:"uptime_seconds"`
		Namespaces    []NamespaceInfo `json:"namespaces"`
	}
	get(t, ts.URL+"/v2/stats", &daemon)
	if len(daemon.Namespaces) != 2 {
		t.Fatalf("daemon stats lists %d namespaces, want 2", len(daemon.Namespaces))
	}
	for _, in := range daemon.Namespaces {
		if in.Name == "t" && in.MembershipN != 10 {
			t.Fatalf("summary n = %d, want 10", in.MembershipN)
		}
	}
}

// TestClassifyMaskOnlyInV2: the raw region mask is a v2 addition; the
// frozen v1 response must not carry it.
func TestClassifyMaskOnlyInV2(t *testing.T) {
	ts := newTestServer(t, testConfig())
	post(t, ts.URL+"/v1/association/add", map[string]any{"set": 1, "keys": []string{"k"}}, 200, nil)
	var raw map[string]any
	post(t, ts.URL+"/v1/association/classify", map[string]any{"keys": []string{"k"}}, 200, &raw)
	first := raw["results"].([]any)[0].(map[string]any)
	if _, ok := first["mask"]; ok {
		t.Fatal("v1 classify response grew a mask field")
	}
	post(t, ts.URL+"/v2/namespaces/default/association/classify", map[string]any{"keys": []string{"k"}}, 200, &raw)
	first = raw["results"].([]any)[0].(map[string]any)
	mask, ok := first["mask"].(float64)
	if !ok {
		t.Fatalf("v2 classify response missing mask: %v", first)
	}
	if int(mask)&1 == 0 { // RegionS1Only bit
		t.Fatalf("mask %v missing s1-only candidate", mask)
	}
}
