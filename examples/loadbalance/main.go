// Load-balancing gateway: the association-query application from the
// paper's introduction.
//
// Content is stored on two servers; popular items are replicated on
// both for load balancing. For each incoming request the gateway must
// decide which server(s) hold the item. One ShBF_A answers that with a
// single filter — k+2 hash computations and k memory accesses per
// query, no false positives in its verdicts — where the classic iBF
// approach needs two filters, 2k hashes, 2k accesses, and can falsely
// claim replication.
//
// Run with: go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"shbf"
)

const (
	itemsPerServer = 50000
	replicated     = 12500 // popular items on both servers
	k              = 10
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Catalog: exclusive items per server plus the replicated set.
	server1Only := makeItems(rng, itemsPerServer-replicated, "s1")
	server2Only := makeItems(rng, itemsPerServer-replicated, "s2")
	popular := makeItems(rng, replicated, "pop")

	s1 := append(append([][]byte{}, server1Only...), popular...)
	s2 := append(append([][]byte{}, server2Only...), popular...)

	// Optimal sizing over the distinct union (paper Table 2).
	nDistinct := len(server1Only) + len(server2Only) + len(popular)
	m := int(float64(nDistinct) * k / math.Ln2)

	gw, err := shbf.BuildAssociation(s1, s2, m, k, shbf.WithSeed(2024))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gateway filter: %d items, %d KiB, k=%d\n\n", nDistinct, gw.SizeBytes()/1024, k)

	// Route a mixed request stream and tally outcomes.
	var toS1, toS2, either, fallback int
	requests := append(append(append([][]byte{}, server1Only...), server2Only...), popular...)
	rng.Shuffle(len(requests), func(i, j int) { requests[i], requests[j] = requests[j], requests[i] })

	// Classify the whole stream with one batch call (the gateway's
	// request loop would hand each arriving batch to QueryAll).
	regions := gw.QueryAll(nil, requests)
	for _, r := range regions {
		switch {
		case r == shbf.RegionBoth:
			either++ // replicated: pick the less-loaded server
		case r.InS1():
			toS1++
		case r.InS2():
			toS2++
		default:
			// Unclear verdict (rare): fall back to asking both servers.
			fallback++
		}
	}

	total := len(requests)
	fmt.Printf("routing decisions over %d requests:\n", total)
	fmt.Printf("  server 1 only:        %6d\n", toS1)
	fmt.Printf("  server 2 only:        %6d\n", toS2)
	fmt.Printf("  either (replicated):  %6d\n", either)
	fmt.Printf("  fallback (ask both):  %6d (%.3f%%)\n", fallback, 100*float64(fallback)/float64(total))
	fmt.Printf("\nexpected fallback rate 1−(1−0.5^k)² = %.3f%%\n",
		100*(1-math.Pow(1-math.Pow(0.5, k), 2)))

	// The verdicts are sound: a request for a server-1 exclusive item is
	// never routed to server 2 alone, and vice versa.
	for _, item := range server1Only {
		if r := gw.Query(item); r == shbf.RegionS2Only {
			log.Fatal("unsound routing — impossible for ShBF_A")
		}
	}
	fmt.Println("soundness check passed: no exclusive item was misrouted")
}

func makeItems(rng *rand.Rand, n int, tag string) [][]byte {
	items := make([][]byte, n)
	for i := range items {
		items[i] = []byte(fmt.Sprintf("%s/object-%08d-%08x", tag, i, rng.Uint32()))
	}
	return items
}
