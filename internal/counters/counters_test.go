package counters

import (
	"math/rand"
	"testing"
	"testing/quick"

	"shbf/internal/memmodel"
)

func TestWidths(t *testing.T) {
	// Every width must pack and unpack exactly, including widths that
	// straddle word boundaries.
	for _, width := range []uint{1, 2, 3, 4, 5, 6, 7, 8, 13, 16, 31, 32, 33, 63, 64} {
		a := New(100, width)
		if a.Width() != width {
			t.Fatalf("Width() = %d, want %d", a.Width(), width)
		}
		rng := rand.New(rand.NewSource(int64(width)))
		want := make([]uint64, 100)
		for i := range want {
			want[i] = rng.Uint64() & a.Max()
			a.Set(i, want[i])
		}
		for i, w := range want {
			if got := a.Peek(i); got != w {
				t.Fatalf("width %d: counter %d = %d, want %d", width, i, got, w)
			}
		}
	}
}

func TestMax(t *testing.T) {
	if got := New(1, 4).Max(); got != 15 {
		t.Errorf("Max(4) = %d, want 15", got)
	}
	if got := New(1, 64).Max(); got != ^uint64(0) {
		t.Errorf("Max(64) = %d, want all-ones", got)
	}
}

func TestIncDec(t *testing.T) {
	a := New(10, 4)
	for i := 0; i < 5; i++ {
		if got := a.Inc(3); got != uint64(i+1) {
			t.Fatalf("Inc #%d = %d, want %d", i, got, i+1)
		}
	}
	for i := 4; i >= 0; i-- {
		v, ok := a.Dec(3)
		if !ok || v != uint64(i) {
			t.Fatalf("Dec = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := a.Dec(3); ok {
		t.Fatal("Dec of zero counter reported ok")
	}
	if a.Peek(3) != 0 {
		t.Fatal("zero counter changed by failed Dec")
	}
}

func TestSaturation(t *testing.T) {
	a := New(2, 2) // max 3
	for i := 0; i < 5; i++ {
		a.Inc(0)
	}
	if got := a.Peek(0); got != 3 {
		t.Fatalf("saturated counter = %d, want 3", got)
	}
	if got := a.Overflows(); got != 2 {
		t.Fatalf("Overflows = %d, want 2", got)
	}
	a.Set(1, 100) // clamps
	if got := a.Peek(1); got != 3 {
		t.Fatalf("Set clamped to %d, want 3", got)
	}
}

func TestNeighborIsolation(t *testing.T) {
	// Mutating one counter must not disturb neighbors, for widths that
	// share words.
	for _, width := range []uint{3, 4, 6, 7} {
		a := New(64, width)
		for i := 0; i < 64; i++ {
			a.Set(i, uint64(i)&a.Max())
		}
		a.Set(31, a.Max())
		a.Inc(32)
		a.Dec(30)
		for i := 0; i < 64; i++ {
			want := uint64(i) & a.Max()
			switch i {
			case 31:
				want = a.Max()
			case 32:
				want = (uint64(32) & a.Max()) + 1
				if want > a.Max() {
					want = a.Max()
				}
			case 30:
				w := uint64(30) & a.Max()
				if w > 0 {
					w--
				}
				want = w
			}
			if got := a.Peek(i); got != want {
				t.Fatalf("width %d: counter %d = %d, want %d", width, i, got, want)
			}
		}
	}
}

func TestIncDecRoundTripProperty(t *testing.T) {
	// Property: a random sequence of Inc operations followed by the same
	// number of Decs per index restores an all-zero array (when no
	// saturation occurs).
	f := func(ops []uint8) bool {
		a := New(32, 8) // max 255 — no saturation for ≤255 ops per slot
		count := map[int]int{}
		for _, op := range ops {
			i := int(op) % 32
			a.Inc(i)
			count[i]++
		}
		for i, c := range count {
			for j := 0; j < c; j++ {
				if _, ok := a.Dec(i); !ok {
					return false
				}
			}
		}
		return a.NonZero() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNonZero(t *testing.T) {
	a := New(100, 4)
	if a.NonZero() != 0 {
		t.Fatal("fresh array has non-zero counters")
	}
	a.Set(5, 1)
	a.Set(50, 7)
	a.Set(99, 15)
	if got := a.NonZero(); got != 3 {
		t.Fatalf("NonZero = %d, want 3", got)
	}
	a.Reset()
	if a.NonZero() != 0 || a.Overflows() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestAccessAccounting(t *testing.T) {
	var c memmodel.Counter
	a := New(100, 4)
	a.SetCounter(&c)
	a.Inc(0) // 1 read + 1 write
	if c.Reads() != 1 || c.Writes() != 1 {
		t.Fatalf("after Inc: %v", &c)
	}
	c.Reset()
	a.Get(0)
	if c.Reads() != 1 || c.Writes() != 0 {
		t.Fatalf("after Get: %v", &c)
	}
	c.Reset()
	a.Dec(0)
	if c.Reads() != 1 || c.Writes() != 1 {
		t.Fatalf("after Dec: %v", &c)
	}
	c.Reset()
	a.Peek(0)
	a.NonZero()
	if c.Total() != 0 {
		t.Fatalf("instrumentation charged %d accesses", c.Total())
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"New(0,4)":  func() { New(0, 4) },
		"New(1,0)":  func() { New(1, 0) },
		"New(1,65)": func() { New(1, 65) },
		"Get(-1)":   func() { New(10, 4).Get(-1) },
		"Set(10)":   func() { New(10, 4).Set(10, 0) },
		"Inc(11)":   func() { New(10, 4).Inc(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSizeBytes(t *testing.T) {
	// 100 4-bit counters = 400 bits = 7 words = 56 bytes.
	if got := New(100, 4).SizeBytes(); got != 56 {
		t.Errorf("SizeBytes = %d, want 56", got)
	}
}

func BenchmarkInc4bit(b *testing.B) {
	a := New(1<<16, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Inc(i & (1<<16 - 1))
	}
}

func TestAddSaturating(t *testing.T) {
	a, b := New(8, 4), New(8, 4)
	for i := 0; i < 8; i++ {
		a.Set(i, uint64(i))   // 0..7
		b.Set(i, uint64(2*i)) // 0..14, clamped to 15 by Set
	}
	if err := a.AddSaturating(b); err != nil {
		t.Fatalf("AddSaturating: %v", err)
	}
	for i := 0; i < 8; i++ {
		want := uint64(3 * i)
		if want > 15 {
			want = 15
		}
		if got := a.Peek(i); got != want {
			t.Fatalf("counter %d = %d, want %d", i, got, want)
		}
	}
	// Sums past Max clamp and tally overflows.
	if a.Overflows() == 0 {
		t.Fatal("clamped sums did not tally overflows")
	}
	// Mismatched geometry is refused.
	if err := a.AddSaturating(New(8, 5)); err == nil {
		t.Fatal("accepted width mismatch")
	}
	if err := a.AddSaturating(New(9, 4)); err == nil {
		t.Fatal("accepted length mismatch")
	}
}

func TestAddSaturatingWidth64(t *testing.T) {
	// Width 64 is where an unchecked sum would wrap instead of clamp.
	a, b := New(2, 64), New(2, 64)
	a.Set(0, ^uint64(0)-1)
	b.Set(0, 5)
	a.Set(1, 7)
	b.Set(1, 9)
	if err := a.AddSaturating(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Peek(0); got != ^uint64(0) {
		t.Fatalf("counter 0 = %d, want saturation", got)
	}
	if got := a.Peek(1); got != 16 {
		t.Fatalf("counter 1 = %d, want 16", got)
	}
}
