// Command shbench regenerates every table and figure of the ShBF
// paper's evaluation (Section 6) and the reproduction's extra
// ablations. Output goes to stdout as aligned text and, with -out, to
// per-figure .txt and .csv files.
//
// Usage:
//
//	shbench [-fig all|3|4|7|8|9|10|11|table2|general|scm|update|
//	              updates|costmodel|multiset|skew|zoo]
//	        [-out dir] [-svg] [-quick] [-seed N] [-trials N] [-probes N]
//	        [-assoc-size N] [-mult-size N]
//	shbench -perf [-perf-out BENCH_PR3.json] [-perf-baseline old.json]
//	        [-perf-note text]
//	shbench -serve [-serve-out BENCH_PR5.json] [-serve-min-speedup X]
//	        [-serve-max-metrics-overhead X]
//	shbench -serve-cluster [-serve-cluster-out BENCH_PR6.json]
//	        [-serve-cluster-min-speedup X]
//	shbench -frozen [-frozen-out BENCH_PR7.json] [-frozen-min-ratio X]
//	        [-frozen-max-open-us X] [-frozen-min-open-speedup X]
//
// Examples:
//
//	shbench -fig all -out results    # full reproduction
//	shbench -fig 9 -quick            # one figure, test-scale
//	shbench -perf                    # hot-path ns/op suite → BENCH_PR3.json
//
// The -perf mode measures the Add/Contains/AddAll/ContainsAll hot
// paths (scalar and sharded, k ∈ {4,8,16}, 13-byte keys), writes a
// machine-readable JSON report, and exits nonzero if any measured hot
// path allocates — CI runs it as the perf/allocation gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"shbf/internal/experiment"
)

func main() {
	var (
		figFlag      = flag.String("fig", "all", "figure to run: all, or a comma list of experiment ids (see usage)")
		outDir       = flag.String("out", "", "directory for .txt/.csv outputs (created if missing)")
		quick        = flag.Bool("quick", false, "use the small test-scale configuration")
		seed         = flag.Int64("seed", 0, "override workload seed (0 = config default)")
		trials       = flag.Int("trials", 0, "override trial count (0 = config default)")
		probes       = flag.Int("probes", 0, "override negative probes per FPR point (0 = default)")
		assocSize    = flag.Int("assoc-size", 0, "override |S1|=|S2| for Figure 10 (0 = default)")
		multSize     = flag.Int("mult-size", 0, "override distinct elements for Figure 11 (0 = default)")
		svg          = flag.Bool("svg", false, "with -out: also write one .svg chart per figure")
		perf         = flag.Bool("perf", false, "run the hot-path perf suite instead of the figures and write machine-readable JSON")
		perfOut      = flag.String("perf-out", "BENCH_PR3.json", "with -perf: output file")
		perfBase     = flag.String("perf-baseline", "", "with -perf: previous BENCH_*.json to embed as the baseline section")
		perfNote     = flag.String("perf-note", "", "with -perf: free-form note recorded in the report")
		serve        = flag.Bool("serve", false, "run the serving-layer ShBP-vs-JSON benchmark (interleaved min-of-N) and write machine-readable JSON")
		serveOut     = flag.String("serve-out", "BENCH_PR5.json", "with -serve: output file")
		serveNote    = flag.String("serve-note", "", "with -serve: free-form note recorded in the report")
		serveGate    = flag.Float64("serve-min-speedup", 0, "with -serve: exit nonzero unless ShBP ContainsAll@256 ≥ this × the JSON keys/sec (0 = no gate)")
		serveMetrics = flag.Float64("serve-max-metrics-overhead", 0, "with -serve: exit nonzero if metrics instrumentation costs more than this fraction of ShBP ContainsAll@256 keys/sec vs a NoMetrics daemon (0 = no gate)")
		cluster      = flag.Bool("serve-cluster", false, "run the 3-node cluster fan-out benchmark (interleaved min-of-N) and write machine-readable JSON")
		clusterOut   = flag.String("serve-cluster-out", "BENCH_PR6.json", "with -serve-cluster: output file")
		clusterNote  = flag.String("serve-cluster-note", "", "with -serve-cluster: free-form note recorded in the report")
		clusterGate  = flag.Float64("serve-cluster-min-speedup", 0, "with -serve-cluster: exit nonzero unless cluster ContainsAll@4096 ≥ this × the single-node keys/sec (0 = no gate)")
		ingestB      = flag.Bool("ingest", false, "run the streaming-ingest benchmark (direct ShBU add-batches vs envelope flush over loopback UDP, interleaved min-of-N) and write machine-readable JSON")
		ingestOut    = flag.String("ingest-out", "BENCH_PR10.json", "with -ingest: output file")
		ingestNote   = flag.String("ingest-note", "", "with -ingest: free-form note recorded in the report")
		ingestGate   = flag.Float64("ingest-min-wire-ratio", 0, "with -ingest: exit nonzero unless envelope flush saves ≥ this × wire bytes/key vs direct batches at the largest flush interval (0 = no gate)")
		frozen       = flag.Bool("frozen", false, "run the frozen-filter benchmark (live vs ShBZ probe throughput, cold open, stack amortization) and write machine-readable JSON")
		frozenOut    = flag.String("frozen-out", "BENCH_PR7.json", "with -frozen: output file")
		frozenNote   = flag.String("frozen-note", "", "with -frozen: free-form note recorded in the report")
		frozenRatio  = flag.Float64("frozen-min-ratio", 0, "with -frozen: exit nonzero unless frozen ContainsAll ≥ this fraction of live keys/sec (0 = no gate)")
		frozenOpen   = flag.Float64("frozen-max-open-us", 0, "with -frozen: exit nonzero if the 10k-filter stack open amortizes above this many µs/filter (0 = no gate)")
		frozenSpeed  = flag.Float64("frozen-min-open-speedup", 0, "with -frozen: exit nonzero unless OpenFrozen beats the envelope decode by this factor (0 = no gate)")
	)
	flag.Parse()

	if *perf {
		if err := runPerf(*perfOut, *perfBase, *perfNote); err != nil {
			fmt.Fprintln(os.Stderr, "shbench:", err)
			os.Exit(1)
		}
		return
	}
	if *serve {
		if err := runServe(*serveOut, *serveNote, *serveGate, *serveMetrics); err != nil {
			fmt.Fprintln(os.Stderr, "shbench:", err)
			os.Exit(1)
		}
		return
	}
	if *cluster {
		if err := runClusterBench(*clusterOut, *clusterNote, *clusterGate); err != nil {
			fmt.Fprintln(os.Stderr, "shbench:", err)
			os.Exit(1)
		}
		return
	}
	if *frozen {
		if err := runFrozen(*frozenOut, *frozenNote, *frozenRatio, *frozenOpen, *frozenSpeed); err != nil {
			fmt.Fprintln(os.Stderr, "shbench:", err)
			os.Exit(1)
		}
		return
	}
	if *ingestB {
		if err := runIngest(*ingestOut, *ingestNote, *ingestGate); err != nil {
			fmt.Fprintln(os.Stderr, "shbench:", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiment.Default()
	if *quick {
		cfg = experiment.Quick()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *trials != 0 {
		cfg.Trials = *trials
	}
	if *probes != 0 {
		cfg.Probes = *probes
	}
	if *assocSize != 0 {
		cfg.AssocSetSize = *assocSize
	}
	if *multSize != 0 {
		cfg.MultisetSize = *multSize
	}

	writeSVG = *svg
	if err := run(*figFlag, *outDir, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "shbench:", err)
		os.Exit(1)
	}
}

// writeSVG selects .svg emission alongside .txt/.csv.
var writeSVG bool

// runner produces the figures (and possibly a table) for one experiment
// id.
type runner struct {
	id   string
	desc string
	figs func(experiment.Config) []*experiment.Figure
	tab  func(experiment.Config) *experiment.Table
}

var runners = []runner{
	{id: "3", desc: "theoretical FPR vs w̄", figs: experiment.RunFig3},
	{id: "4", desc: "theoretical ShBF_M vs BF FPR", figs: experiment.RunFig4},
	{id: "7", desc: "membership FPR vs 1MemBF", figs: experiment.RunFig7},
	{id: "8", desc: "membership memory accesses", figs: experiment.RunFig8},
	{id: "9", desc: "membership query speed", figs: experiment.RunFig9},
	{id: "table2", desc: "association analytic comparison", tab: experiment.RunTable2},
	{id: "10", desc: "association queries vs iBF", figs: experiment.RunFig10},
	{id: "11", desc: "multiplicity queries vs Spectral/CM", figs: experiment.RunFig11},
	{id: "general", desc: "t-shift generalization ablation", figs: experiment.RunGeneralAblation},
	{id: "scm", desc: "shifting count-min ablation", figs: experiment.RunSCMAblation},
	{id: "update", desc: "CShBF_X update-mode ablation", figs: experiment.RunUpdateAblation},
	{id: "updates", desc: "update (churn) throughput table", tab: experiment.RunUpdateTable},
	{id: "costmodel", desc: "SRAM/DRAM latency model table", tab: experiment.RunCostModelTable},
	{id: "multiset", desc: "g-set association extension vs CodedBF", figs: experiment.RunMultiSetAblation},
	{id: "skew", desc: "multiplicity correctness under count skew", figs: experiment.RunSkewAblation},
	{id: "zoo", desc: "membership scheme zoo", figs: experiment.RunMembershipZoo},
	{id: "window", desc: "sliding-window accuracy (generation ring)", figs: experiment.RunWindowAblation},
}

func run(figFlag, outDir string, cfg experiment.Config) error {
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return fmt.Errorf("creating %s: %w", outDir, err)
		}
	}
	selected := strings.Split(figFlag, ",")
	matched := false
	for _, r := range runners {
		if !contains(selected, r.id) && figFlag != "all" {
			continue
		}
		matched = true
		start := time.Now()
		fmt.Printf("=== experiment %s: %s ===\n", r.id, r.desc)
		if r.figs != nil {
			for _, fig := range r.figs(cfg) {
				if err := emitFigure(fig, outDir); err != nil {
					return err
				}
			}
		}
		if r.tab != nil {
			if err := emitTable(r.tab(cfg), outDir); err != nil {
				return err
			}
		}
		fmt.Printf("    (%.1fs)\n\n", time.Since(start).Seconds())
	}
	if !matched {
		return fmt.Errorf("unknown figure %q (valid: all, %s)", figFlag, idList())
	}
	return nil
}

func emitFigure(fig *experiment.Figure, outDir string) error {
	if err := fig.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if outDir == "" {
		return nil
	}
	txt, err := os.Create(filepath.Join(outDir, "fig"+fig.ID+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := fig.Render(txt); err != nil {
		return err
	}
	csv, err := os.Create(filepath.Join(outDir, "fig"+fig.ID+".csv"))
	if err != nil {
		return err
	}
	defer csv.Close()
	if err := fig.WriteCSV(csv); err != nil {
		return err
	}
	if writeSVG {
		svgFile, err := os.Create(filepath.Join(outDir, "fig"+fig.ID+".svg"))
		if err != nil {
			return err
		}
		defer svgFile.Close()
		return fig.WriteSVG(svgFile)
	}
	return nil
}

func emitTable(tab *experiment.Table, outDir string) error {
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if outDir == "" {
		return nil
	}
	txt, err := os.Create(filepath.Join(outDir, "table"+tab.ID+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := tab.Render(txt); err != nil {
		return err
	}
	csv, err := os.Create(filepath.Join(outDir, "table"+tab.ID+".csv"))
	if err != nil {
		return err
	}
	defer csv.Close()
	return tab.WriteCSV(csv)
}

func contains(list []string, v string) bool {
	for _, s := range list {
		if s == v {
			return true
		}
	}
	return false
}

func idList() string {
	ids := make([]string, len(runners))
	for i, r := range runners {
		ids[i] = r.id
	}
	return strings.Join(ids, ", ")
}
