package bitvec

import (
	"encoding/binary"
	"fmt"
)

// This file implements the binary serialization of bit vectors used by
// the filters' MarshalBinary/UnmarshalBinary: a uvarint bit length
// followed by the data words little-endian (guard word excluded — it is
// reconstructed empty).

// AppendBinary appends the vector's serialized form to buf and returns
// the result.
func (v *Vector) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(v.n))
	dataWords := (v.n + 63) / 64
	for _, w := range v.words[:dataWords] {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// DecodeVector reads a vector serialized by AppendBinary from buf,
// returning the vector and the remaining bytes.
func DecodeVector(buf []byte) (*Vector, []byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("bitvec: truncated length")
	}
	buf = buf[sz:]
	if n == 0 || n > 1<<40 {
		return nil, nil, fmt.Errorf("bitvec: implausible bit length %d", n)
	}
	v := New(int(n))
	dataWords := (int(n) + 63) / 64
	if len(buf) < dataWords*8 {
		return nil, nil, fmt.Errorf("bitvec: truncated words: need %d bytes, have %d", dataWords*8, len(buf))
	}
	for i := 0; i < dataWords; i++ {
		v.words[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	// The tail bits beyond n within the last word must be zero for
	// OnesCount/Equal invariants; reject corrupt input.
	if rem := uint(int(n) & 63); rem != 0 {
		if v.words[dataWords-1]>>rem != 0 {
			return nil, nil, fmt.Errorf("bitvec: non-zero bits beyond logical length")
		}
	}
	return v, buf[dataWords*8:], nil
}
