package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteSVGLinear(t *testing.T) {
	fig := &Figure{ID: "t", Title: "linear test", XLabel: "k", YLabel: "Mqps"}
	fig.Add("a", 1, 10)
	fig.Add("a", 2, 12)
	fig.Add("b", 1, 8)
	fig.Add("b", 2, 9)

	var buf bytes.Buffer
	if err := fig.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "circle",
		"linear test", ">a<", ">b<", "Mqps",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Two series → two polylines.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("%d polylines, want 2", got)
	}
}

func TestWriteSVGLogScale(t *testing.T) {
	// FPR-style data spanning many decades must switch to log ticks
	// (scientific-notation labels).
	fig := &Figure{ID: "log", Title: "log test", XLabel: "k", YLabel: "FP rate"}
	fig.Add("s", 1, 0.1)
	fig.Add("s", 2, 0.001)
	fig.Add("s", 3, 0.00001)

	var buf bytes.Buffer
	if err := fig.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1e-") {
		t.Fatal("log-scale ticks missing")
	}
}

func TestWriteSVGEmptyFigure(t *testing.T) {
	fig := &Figure{ID: "e", Title: "empty", XLabel: "x", YLabel: "y"}
	var buf bytes.Buffer
	if err := fig.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</svg>") {
		t.Fatal("empty figure did not render a valid frame")
	}
}

func TestWriteSVGEscapesMarkup(t *testing.T) {
	fig := &Figure{ID: "x", Title: `a<b>"&`, XLabel: "x", YLabel: "y"}
	fig.Add("s<1>", 1, 1)
	var buf bytes.Buffer
	if err := fig.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, `a<b>`) {
		t.Fatal("unescaped markup in title")
	}
	if !strings.Contains(out, "a&lt;b&gt;&quot;&amp;") {
		t.Fatal("escaped title missing")
	}
}

func TestWriteSVGZeroYsOnLogScale(t *testing.T) {
	// Zero FPR points (measured zeros) must be skipped, not crash the
	// log transform.
	fig := &Figure{ID: "z", Title: "zeros", XLabel: "k", YLabel: "FP rate"}
	fig.Add("s", 1, 0.01)
	fig.Add("s", 2, 0)
	fig.Add("s", 3, 0.00001)
	var buf bytes.Buffer
	if err := fig.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</svg>") {
		t.Fatal("render failed")
	}
}
