// Package shbf is a Go implementation of the Shifting Bloom Filter
// framework from Tong Yang et al., "A Shifting Bloom Filter Framework
// for Set Queries", VLDB 2016.
//
// A Shifting Bloom Filter (ShBF) encodes, per element, both existence
// information (k hash positions) and auxiliary information (a small
// location offset added to those positions). Choosing what the offset
// means instantiates the framework for different set queries:
//
//   - Membership ([NewMembership], ShBF_M): the offset is extra hash
//     randomness. Queries cost half the hash computations and half the
//     memory accesses of a same-accuracy standard Bloom filter, because
//     one aligned memory read fetches both bits of each (base, shifted)
//     pair.
//
//   - Association ([BuildAssociation], ShBF_A): given two sets S1 and
//     S2, the offset encodes whether an element is in S1−S2, S1∩S2, or
//     S2−S1. Queries return sound candidate sets — never a wrong
//     region — with a clear single-region answer with probability
//     (1−0.5^k)² at the optimum.
//
//   - Multiplicity ([NewMultiplicity], ShBF_X): the offset is the
//     element's count minus one in a multi-set. Reported counts never
//     underestimate.
//
// Counting variants ([NewCountingMembership], [NewCountingAssociation],
// [NewCountingMultiplicity]) add dynamic updates by shadowing the bit
// array with counters, and [NewSCMSketch] applies the shifting idea to
// the count-min sketch. [NewTShift] generalizes ShBF_M to t offsets per
// group (paper Section 3.6).
//
// # Unified construction and interfaces
//
// Every filter kind is named by a [Kind] and constructed from a [Spec]
// — its complete geometry in one value — through the single entry
// point [New]:
//
//	f, err := shbf.New(shbf.Spec{Kind: shbf.KindMembership, M: m, K: k})
//	set := f.(shbf.Set) // Add/Contains + AddAll/ContainsAll
//
// All filters implement [Filter] (Kind/Spec/Stats/MarshalBinary); the
// query surfaces are the small interfaces [Set], [Updatable],
// [Counter] and [Associator], each with batch-first methods
// (AddAll/ContainsAll/CountAll/QueryAll) that the sharded kinds
// implement by taking each shard lock once per batch. [Dump] and
// [Load] round-trip any filter through a self-describing envelope: the
// kind travels in the bytes, so the loader needs no prior knowledge of
// what was dumped. The sizing planners ([PlanMembership],
// [PlanAssociation], [PlanMultiplicity]) return plans whose Spec
// method feeds New directly. The typed constructors below remain as
// thin wrappers over the same machinery.
//
// # Sliding windows
//
// Streaming deployments need "was this key seen in the last N ticks",
// not "ever". [NewWindow] wraps any membership, association or
// multiplicity Spec in a generation ring ([WindowMembership],
// [WindowAssociation], [WindowMultiplicity], and their sharded
// compositions): writes go to the head generation, queries combine the
// whole ring (membership ORs, counts sum, association unions candidate
// regions), and each rotation ([Windowed].Rotate, or the Tick policy)
// retires the oldest generation — so memory stays at Generations × one
// filter and the false-positive rate is bounded by 1 − (1−f)^G no
// matter how long the stream runs. The cmd/shbfd daemon exposes this
// as -window/-tick with a POST /v1/rotate endpoint.
//
// Elements are arbitrary []byte values (the paper uses 13-byte 5-tuple
// flow IDs). Filters are deterministic for a given seed and are not
// safe for concurrent mutation; concurrent read-only queries on
// distinct filter instances are fine. Construction parameters follow
// the paper's notation: m bits, k bit positions per element, w̄ maximum
// offset (57 on 64-bit machines), c maximum multiplicity.
//
// For serving queries from many concurrent clients, the sharded
// wrappers ([NewShardedMembership], [NewShardedAssociation],
// [NewShardedMultiplicity]) split one logical filter across
// lock-striped shards, and the cmd/shbfd daemon (internal/server)
// exposes them over a batch HTTP/JSON API with snapshot persistence
// and occupancy/FPR stats.
//
// The reproduction of the paper's full evaluation lives in
// internal/experiment and is driven by cmd/shbench. DESIGN.md
// documents the architecture (core encodings, counting variants,
// sharding, serving layer) and EXPERIMENTS.md the mapping from paper
// figures to code; README.md has the quickstart.
package shbf

import (
	"shbf/internal/core"
	"shbf/internal/memmodel"
	"shbf/internal/sharded"
	"shbf/internal/sizing"
	"shbf/internal/window"
)

// Membership is ShBF_M, the shifting Bloom filter for membership
// queries (paper Section 3). See [NewMembership].
type Membership = core.Membership

// CountingMembership is CShBF_M, the deletable membership filter (paper
// Section 3.3). See [NewCountingMembership].
type CountingMembership = core.CountingMembership

// TShift is the generalized t-offset membership filter (paper Section
// 3.6). See [NewTShift].
type TShift = core.TShift

// Association is ShBF_A, the two-set association filter (paper Section
// 4). See [BuildAssociation].
type Association = core.Association

// CountingAssociation is CShBF_A, the updatable association filter
// (paper Section 4.3). See [NewCountingAssociation].
type CountingAssociation = core.CountingAssociation

// Multiplicity is ShBF_X, the multi-set multiplicity filter (paper
// Section 5). See [NewMultiplicity].
type Multiplicity = core.Multiplicity

// CountingMultiplicity is CShBF_X, the updatable multiplicity filter
// (paper Section 5.3). See [NewCountingMultiplicity].
type CountingMultiplicity = core.CountingMultiplicity

// SCMSketch is the shifting count-min sketch (paper Section 5.5). See
// [NewSCMSketch].
type SCMSketch = core.SCMSketch

// Region is the candidate-region bitmask returned by association
// queries; RegionS1Only, RegionBoth and RegionS2Only are its atoms.
type Region = core.Region

// Region constants re-exported from the core implementation.
const (
	RegionNone   = core.RegionNone
	RegionS1Only = core.RegionS1Only
	RegionBoth   = core.RegionBoth
	RegionS2Only = core.RegionS2Only
)

// AccessCounter tallies the memory accesses of a filter's query path
// under the paper's byte-addressable model; attach one with
// [WithAccessCounter] to reproduce the "# memory accesses" experiments.
type AccessCounter = memmodel.Counter

// Option configures filter construction. Each option applies only to
// the kinds whose constructor consumes it; a misapplied option (e.g.
// [WithUnsafeUpdates] on a membership filter, or [WithCounterWidth] on
// a non-counting kind) is a construction error naming the option, not
// a silent no-op.
type Option = core.Option

// Errors returned by the counting variants.
var (
	// ErrNotStored reports a delete of an element that is not stored.
	ErrNotStored = core.ErrNotStored
	// ErrCountOverflow reports a multiplicity exceeding the filter's c.
	ErrCountOverflow = core.ErrCountOverflow
	// ErrCounterSaturated reports a fixed-width counter overflow.
	ErrCounterSaturated = core.ErrCounterSaturated
)

// DefaultMaxOffset is w̄ = w−7 = 57 for 64-bit machines, the paper's
// recommended maximum offset.
const DefaultMaxOffset = core.DefaultMaxOffset

// WithSeed derives the filter's hash functions from seed; equal seeds
// give identical filters.
func WithSeed(seed uint64) Option { return core.WithSeed(seed) }

// WithMaxOffset overrides the maximum offset value w̄ (default 57; the
// paper shows w̄ ≥ 20 already matches the Bloom-filter FPR).
func WithMaxOffset(wbar int) Option { return core.WithMaxOffset(wbar) }

// WithAccessCounter attaches a memory-access counter to the filter's
// query-side storage.
func WithAccessCounter(c *AccessCounter) Option { return core.WithAccessCounter(c) }

// WithCounterWidth sets the counter bit width of counting variants
// (default 4, per paper Section 3.3).
func WithCounterWidth(bits uint) Option { return core.WithCounterWidth(bits) }

// WithUnsafeUpdates selects the paper's Section 5.3.1 update mode for
// CountingMultiplicity (no backing hash table, false negatives
// possible). The default is the no-false-negative mode of Section
// 5.3.2.
func WithUnsafeUpdates() Option { return core.WithUnsafeUpdates() }

// NewMembership returns an empty ShBF_M with an m-bit base array and k
// bit positions per element (k even). Sizing rule of thumb: for target
// false-positive rate f, use k ≈ 0.7·m/n where n is the expected set
// size; the minimum achievable rate is ≈ 0.6204^{m/n} (paper Equation
// 7).
func NewMembership(m, k int, opts ...Option) (*Membership, error) {
	return core.NewMembership(m, k, opts...)
}

// NewCountingMembership returns an empty CShBF_M supporting Insert and
// Delete.
func NewCountingMembership(m, k int, opts ...Option) (*CountingMembership, error) {
	return core.NewCountingMembership(m, k, opts...)
}

// NewTShift returns the generalized membership filter with k total bit
// positions arranged in groups of one base hash plus t shifted copies;
// (t+1) must divide k. t = 1 is the ShBF_M construction.
func NewTShift(m, k, t int, opts ...Option) (*TShift, error) {
	return core.NewTShift(m, k, t, opts...)
}

// BuildAssociation constructs ShBF_A over two element sets (which may
// overlap — handling overlap soundly is the scheme's point). The
// paper's optimal sizing is m = |S1 ∪ S2|·k/ln 2.
func BuildAssociation(s1, s2 [][]byte, m, k int, opts ...Option) (*Association, error) {
	return core.BuildAssociation(s1, s2, m, k, opts...)
}

// NewCountingAssociation returns an empty updatable association filter
// supporting InsertS1/InsertS2/DeleteS1/DeleteS2.
func NewCountingAssociation(m, k int, opts ...Option) (*CountingAssociation, error) {
	return core.NewCountingAssociation(m, k, opts...)
}

// NewMultiplicity returns an empty ShBF_X for multiplicities in [1, c]
// (the paper uses c = 57). Elements are encoded once with their final
// count via AddWithCount; reported counts never underestimate.
func NewMultiplicity(m, k, c int, opts ...Option) (*Multiplicity, error) {
	return core.NewMultiplicity(m, k, c, opts...)
}

// NewCountingMultiplicity returns an empty CShBF_X supporting
// increment/decrement updates (Insert/Delete).
func NewCountingMultiplicity(m, k, c int, opts ...Option) (*CountingMultiplicity, error) {
	return core.NewCountingMultiplicity(m, k, c, opts...)
}

// NewSCMSketch returns a shifting count-min sketch with logical depth d
// (even; comparable to a CM sketch with d rows) and r base counters per
// physical row.
func NewSCMSketch(d, r int, opts ...Option) (*SCMSketch, error) {
	return core.NewSCMSketch(d, r, opts...)
}

// MultiAssociation generalizes ShBF_A to g sets (2 ≤ g ≤ 5): an
// element's region — the subset of sets containing it — is encoded in
// the offset. Unlike the coded/combinatorial Bloom filter family, the
// sets may overlap. See [BuildMultiAssociation].
type MultiAssociation = core.MultiAssociation

// MultiAnswer is the candidate-region result of a MultiAssociation
// query.
type MultiAnswer = core.MultiAnswer

// BuildMultiAssociation constructs a g-set association filter over
// sets (g = len(sets), between 2 and 5). Optimal sizing is
// m = |union|·k/ln 2, as for ShBF_A.
func BuildMultiAssociation(sets [][][]byte, m, k int, opts ...Option) (*MultiAssociation, error) {
	return core.BuildMultiAssociation(sets, m, k, opts...)
}

// ShardedMembership is a thread-safe membership filter: the total bit
// budget is split across power-of-two ShBF_M shards, elements are
// routed by an independent hash, and shards are individually locked so
// concurrent queries proceed in parallel. See [NewShardedMembership].
type ShardedMembership = sharded.Filter

// NewShardedMembership returns a concurrency-safe membership filter
// with totalBits split across shardCount shards (rounded up to a power
// of two). The false-positive rate matches a monolithic filter of the
// same total size.
func NewShardedMembership(totalBits, k, shardCount int, opts ...Option) (*ShardedMembership, error) {
	return sharded.New(totalBits, k, shardCount, opts...)
}

// ShardedAssociation is a thread-safe, updatable two-set association
// filter sharded like [ShardedMembership]; each shard is an independent
// CShBF_A. See [NewShardedAssociation].
type ShardedAssociation = sharded.Association

// NewShardedAssociation returns a concurrency-safe association filter
// with totalBits split across shardCount shards (rounded up to a power
// of two), supporting InsertS1/InsertS2/DeleteS1/DeleteS2/Query.
func NewShardedAssociation(totalBits, k, shardCount int, opts ...Option) (*ShardedAssociation, error) {
	return sharded.NewAssociation(totalBits, k, shardCount, opts...)
}

// ShardedMultiplicity is a thread-safe, updatable multi-set
// multiplicity filter sharded like [ShardedMembership]; each shard is
// an independent CShBF_X. See [NewShardedMultiplicity].
type ShardedMultiplicity = sharded.Multiplicity

// NewShardedMultiplicity returns a concurrency-safe multiplicity filter
// for counts in [1, c], with totalBits split across shardCount shards
// (rounded up to a power of two), supporting Insert/Delete/Count.
func NewShardedMultiplicity(totalBits, k, c, shardCount int, opts ...Option) (*ShardedMultiplicity, error) {
	return sharded.NewMultiplicity(totalBits, k, c, shardCount, opts...)
}

// WindowMembership is the sliding-window membership filter: a
// generation ring of ShBF_M filters in which Add writes the head
// generation, Contains ORs across the ring, and Rotate retires the
// oldest generation — "was this key seen in the last N ticks" instead
// of "ever". Build with [NewWindow] over a KindMembership Spec.
type WindowMembership = window.Membership

// WindowAssociation is the sliding-window two-set association filter
// (a ring of CShBF_A generations; queries union candidate regions
// across the ring). Build with [NewWindow] over a KindAssociation or
// KindCountingAssociation Spec.
type WindowAssociation = window.Association

// WindowMultiplicity is the sliding-window multiplicity filter (a ring
// of CShBF_X generations; counts sum across the ring and never
// underestimate the in-window multiplicity). Build with [NewWindow]
// over a KindMultiplicity or KindCountingMultiplicity Spec.
type WindowMultiplicity = window.Multiplicity

// ShardedWindowMembership composes [WindowMembership] with the
// lock-striped shard layout: each shard owns a generation ring and
// Rotate walks the shards one lock at a time, so rotation never blocks
// queries on other shards. Build with [NewWindow] over a
// KindShardedMembership Spec.
type ShardedWindowMembership = sharded.Window

// ShardedWindowAssociation is the lock-striped composition of
// [WindowAssociation]; see [ShardedWindowMembership].
type ShardedWindowAssociation = sharded.WindowAssociation

// ShardedWindowMultiplicity is the lock-striped composition of
// [WindowMultiplicity]; see [ShardedWindowMembership].
type ShardedWindowMultiplicity = sharded.WindowMultiplicity

// MembershipPlan, AssociationPlan, MultiplicityPlan and WindowPlan are
// sized filter geometries produced by the Plan* helpers.
type (
	MembershipPlan   = sizing.MembershipPlan
	AssociationPlan  = sizing.AssociationPlan
	MultiplicityPlan = sizing.MultiplicityPlan
	WindowPlan       = sizing.WindowPlan
)

// PlanMembership returns the smallest ShBF_M geometry whose predicted
// false-positive rate (paper Equation 1) meets target for n elements.
func PlanMembership(n int, targetFPR float64) (MembershipPlan, error) {
	return sizing.Membership(n, targetFPR, DefaultMaxOffset)
}

// PlanAssociation returns a ShBF_A geometry whose clear-answer
// probability (paper Table 2) meets target for nDistinct = |S1 ∪ S2|.
func PlanAssociation(nDistinct int, targetClear float64) (AssociationPlan, error) {
	return sizing.Association(nDistinct, targetClear)
}

// PlanMultiplicity returns a ShBF_X geometry whose worst-case
// correctness rate (paper Equation 27) meets target for n distinct
// elements with counts up to c.
func PlanMultiplicity(n, c int, targetCR float64) (MultiplicityPlan, error) {
	return sizing.Multiplicity(n, c, targetCR)
}

// PlanWindow sizes a sliding-window membership filter for nPerTick
// inserts per rotation period, a ring of generations, and a whole-
// window false-positive bound: the per-generation budget is
// 1−(1−targetFPR)^(1/generations) evaluated at nPerTick keys, so the
// union over the ring meets the target. The plan's Spec method is the
// per-generation base Spec for [NewWindow]:
//
//	plan, _ := shbf.PlanWindow(100_000, 4, 0.001)
//	f, _ := shbf.NewWindow(plan.Spec(),
//		shbf.WindowOpts{Generations: plan.Generations, Tick: time.Minute})
//
// or use plan.WindowSpec(tick) with [New] directly. Steady-state
// memory is plan.TotalBits = generations × plan.Generation.M.
func PlanWindow(nPerTick, generations int, targetFPR float64) (WindowPlan, error) {
	return sizing.Window(nPerTick, generations, targetFPR, DefaultMaxOffset)
}
