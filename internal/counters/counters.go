// Package counters implements packed fixed-width counter arrays, the
// array C of the counting filters (CBF, CShBF_M, CShBF_A, CShBF_X,
// Spectral BF, DCF).
//
// The paper notes that "in most applications, 4 bits for a counter are
// enough" (Section 3.3) and uses 6-bit counters for Spectral BF and the
// CM sketch in the Figure 11 experiments; Array supports any width from
// 1 to 64 bits and packs counters contiguously so that z-bit counters
// observe the same one-access window rule as bits when
// w̄ ≤ ⌊(w−7)/z⌋ (Section 3.3).
package counters

import (
	"fmt"

	"shbf/internal/memmodel"
)

// Array is a fixed-size array of n counters, each width bits wide.
// Increments saturate at the maximum value (2^width − 1) rather than
// wrapping; Overflows reports how often saturation happened so
// experiments can verify the paper's "4 bits are enough" claim.
type Array struct {
	words     []uint64
	n         int
	width     uint
	max       uint64
	overflows uint64
	acc       *memmodel.Counter
}

// New returns an array of n counters of the given bit width, all zero.
// It panics if n is not positive or width is outside [1, 64]; both are
// static configuration.
func New(n int, width uint) *Array {
	if n <= 0 {
		panic(fmt.Sprintf("counters: size %d must be positive", n))
	}
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("counters: width %d out of range [1,64]", width))
	}
	totalBits := n * int(width)
	var max uint64
	if width == 64 {
		max = ^uint64(0)
	} else {
		max = (1 << width) - 1
	}
	return &Array{
		words: make([]uint64, (totalBits+63)/64),
		n:     n,
		width: width,
		max:   max,
	}
}

// SetCounter attaches a memory-access counter; nil detaches.
func (a *Array) SetCounter(c *memmodel.Counter) { a.acc = c }

// Len returns the number of counters.
func (a *Array) Len() int { return a.n }

// Width returns the counter width in bits.
func (a *Array) Width() uint { return a.width }

// Max returns the saturation value 2^width − 1.
func (a *Array) Max() uint64 { return a.max }

// Overflows returns how many increments saturated.
func (a *Array) Overflows() uint64 { return a.overflows }

// SizeBytes returns the memory footprint of the counter storage.
func (a *Array) SizeBytes() int { return len(a.words) * 8 }

// Get returns counter i, charging one read access (a z-bit counter read
// is one aligned fetch for every width the reproduction uses).
func (a *Array) Get(i int) uint64 {
	a.boundsCheck(i)
	a.acc.AddReads(1)
	return a.get(i)
}

// Peek returns counter i without charging an access.
func (a *Array) Peek(i int) uint64 {
	a.boundsCheck(i)
	return a.get(i)
}

// Set stores v into counter i (clamped to Max), charging one write.
func (a *Array) Set(i int, v uint64) {
	a.boundsCheck(i)
	if v > a.max {
		v = a.max
	}
	a.put(i, v)
	a.acc.AddWrites(1)
}

// Inc increments counter i by 1, saturating at Max. It returns the new
// value and charges one read and one write access.
func (a *Array) Inc(i int) uint64 {
	a.boundsCheck(i)
	v := a.get(i)
	a.acc.AddReads(1)
	if v == a.max {
		a.overflows++
		a.acc.AddWrites(1)
		return v
	}
	v++
	a.put(i, v)
	a.acc.AddWrites(1)
	return v
}

// Dec decrements counter i by 1. Decrementing a zero counter is a
// programming error in every scheme that uses this package (it means a
// delete without a matching insert), so Dec reports it via ok=false and
// leaves the counter at zero. It charges one read and one write access.
func (a *Array) Dec(i int) (v uint64, ok bool) {
	a.boundsCheck(i)
	v = a.get(i)
	a.acc.AddReads(1)
	if v == 0 {
		return 0, false
	}
	v--
	a.put(i, v)
	a.acc.AddWrites(1)
	return v, true
}

// AddSaturating adds o's counters into a counter-wise, clamping each
// sum at Max — the merge primitive of the counting-filter union
// (core.CountingMultiplicity.Merge): a clamped counter can only delay
// bit clearing on later deletes, never clear a bit early, so the
// no-false-negative guarantee survives the merge. Each clamp is
// tallied as an overflow. The arrays must agree on length and width;
// no memory accesses are charged (merges are rare control-plane
// events, not query-path work).
func (a *Array) AddSaturating(o *Array) error {
	if a.n != o.n || a.width != o.width {
		return fmt.Errorf("counters: mismatched arrays (%d×%d-bit vs %d×%d-bit)",
			a.n, a.width, o.n, o.width)
	}
	for i := 0; i < a.n; i++ {
		ov := o.get(i)
		if ov == 0 {
			continue
		}
		v := a.get(i) + ov
		// Both operands are ≤ max ≤ 2^64−1 with width ≤ 64; the sum can
		// wrap only at width 64, where wrapping below either operand
		// detects it.
		if v > a.max || v < ov {
			v = a.max
			a.overflows++
		}
		a.put(i, v)
	}
	return nil
}

// Reset zeroes all counters and the overflow tally.
func (a *Array) Reset() {
	for i := range a.words {
		a.words[i] = 0
	}
	a.overflows = 0
}

// NonZero returns the number of non-zero counters (instrumentation; no
// access charged). For a CBF this equals the OnesCount of the shadowed
// bit array.
func (a *Array) NonZero() int {
	count := 0
	for i := 0; i < a.n; i++ {
		if a.get(i) != 0 {
			count++
		}
	}
	return count
}

func (a *Array) get(i int) uint64 {
	bit := i * int(a.width)
	wi, off := bit>>6, uint(bit&63)
	v := a.words[wi] >> off
	if off+a.width > 64 {
		v |= a.words[wi+1] << (64 - off)
	}
	return v & a.max
}

func (a *Array) put(i int, v uint64) {
	bit := i * int(a.width)
	wi, off := bit>>6, uint(bit&63)
	a.words[wi] = a.words[wi]&^(a.max<<off) | v<<off
	if off+a.width > 64 {
		hi := a.width - (64 - off)
		a.words[wi+1] = a.words[wi+1]&^(a.max>>(a.width-hi)) | v>>(a.width-hi)
	}
}

func (a *Array) boundsCheck(i int) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("counters: index %d out of range [0,%d)", i, a.n))
	}
}
