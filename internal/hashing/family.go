package hashing

import "fmt"

// Family is an ordered collection of independent hash functions
// h_1(.), …, h_n(.), the basic ingredient of every Bloom-filter variant
// in the paper. Since PR 3 a family is digest-based: all n functions
// are derived from the key's single one-pass [Digest] by one integer
// mix per function (digest.go), so evaluating i functions costs one
// pass over the input plus i mixes — not i passes. The paper's hashing
// budgets (ShBF_M's k/2+1 versus the standard filter's k) survive as
// mix counts; what the pipeline removes is the per-function re-scan of
// the key.
type Family struct {
	mix []uint64 // per-function mix seeds, SplitMix64-derived from the family seed
}

// NewFamily returns a family of n independent hash functions derived
// from seed. Distinct seeds give families with unrelated outputs (the
// mix seeds differ), while every family digests keys identically
// (KeyDigest), which is what lets one digest per key serve any number
// of filters. It panics if n is not positive: family sizes are static
// configuration, not runtime input.
func NewFamily(n int, seed uint64) *Family {
	if n <= 0 {
		panic(fmt.Sprintf("hashing: family size %d must be positive", n))
	}
	state := seed
	mix := make([]uint64, n)
	for i := range mix {
		mix[i] = SplitMix64(&state)
	}
	return &Family{mix: mix}
}

// Len returns the number of functions in the family.
func (f *Family) Len() int { return len(f.mix) }

// Digest returns the key's canonical one-pass digest, from which every
// member function's value is derived. Callers evaluating more than one
// function — or passing the key through more than one layer — compute
// it once and use the *FromDigest forms.
func (f *Family) Digest(key []byte) Digest { return KeyDigest(key) }

// FromDigest evaluates the i-th function on the key whose digest is d.
func (f *Family) FromDigest(i int, d Digest) uint64 {
	return MixDigest(d, f.mix[i])
}

// ModFromDigest evaluates the i-th function modulo m on the key whose
// digest is d — multiply-shift reduction (Reduce) over the mix core,
// whose high bits the reduction consumes (see mixCore).
func (f *Family) ModFromDigest(i int, d Digest, m int) int {
	return Reduce(mixCore(d, f.mix[i]), m)
}

// PositionsFromDigest appends the first k function values modulo m for
// the key whose digest is d, reusing dst. This is the whole pipeline —
// digest → lane mixing → positions — in one call: k mixes, zero
// additional passes over the key.
func (f *Family) PositionsFromDigest(d Digest, k, m int, dst []int) []int {
	dst = dst[:0]
	for i := 0; i < k; i++ {
		dst = append(dst, Reduce(mixCore(d, f.mix[i]), m))
	}
	return dst
}

// Sum64 evaluates the i-th function on data. Scalar convenience:
// digests then mixes, so a lone call still costs one pass.
func (f *Family) Sum64(i int, data []byte) uint64 {
	return f.FromDigest(i, KeyDigest(data))
}

// Mod evaluates the i-th function on data modulo m.
func (f *Family) Mod(i int, data []byte, m int) int {
	return f.ModFromDigest(i, KeyDigest(data), m)
}
