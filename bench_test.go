package shbf_test

// bench_test.go regenerates every table and figure of the paper's
// evaluation as testing.B benchmarks. Each BenchmarkFigN runs the
// corresponding experiment at a reduced-but-representative scale (the
// same code paths cmd/shbench drives at full scale) so `go test
// -bench=.` exercises the complete reproduction. Micro-benchmarks at
// the bottom compare the individual schemes directly; their ns/op
// ratios are the raw material behind the paper's Figure 9/10(c)/11(c)
// speedups.

import (
	"math/rand"
	"testing"

	"shbf"
	"shbf/internal/baseline"
	"shbf/internal/experiment"
)

// benchConfig is sized so a full -bench=. run finishes in minutes while
// still sweeping every parameter of every figure.
func benchConfig() experiment.Config {
	cfg := experiment.Quick()
	cfg.Probes = 50000
	cfg.AssocSetSize = 10000
	cfg.MultisetSize = 10000
	return cfg
}

func BenchmarkFig3_TheoryFPRvsW(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if figs := experiment.RunFig3(cfg); len(figs) != 2 {
			b.Fatal("wrong figure count")
		}
	}
}

func BenchmarkFig4_TheoryFPRvsK(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if figs := experiment.RunFig4(cfg); len(figs) != 1 {
			b.Fatal("wrong figure count")
		}
	}
}

func BenchmarkFig7_MembershipFPR(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if figs := experiment.RunFig7(cfg); len(figs) != 3 {
			b.Fatal("wrong figure count")
		}
	}
}

func BenchmarkFig8_MemoryAccesses(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if figs := experiment.RunFig8(cfg); len(figs) != 3 {
			b.Fatal("wrong figure count")
		}
	}
}

func BenchmarkFig9_QuerySpeed(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if figs := experiment.RunFig9(cfg); len(figs) != 3 {
			b.Fatal("wrong figure count")
		}
	}
}

func BenchmarkTable2_AssociationComparison(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if tab := experiment.RunTable2(cfg); len(tab.Rows) != 2 {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkFig10_AssociationQueries(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if figs := experiment.RunFig10(cfg); len(figs) != 3 {
			b.Fatal("wrong figure count")
		}
	}
}

func BenchmarkFig11_MultiplicityQueries(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if figs := experiment.RunFig11(cfg); len(figs) != 3 {
			b.Fatal("wrong figure count")
		}
	}
}

func BenchmarkAblation_TShiftGeneralization(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiment.RunGeneralAblation(cfg)
	}
}

func BenchmarkAblation_SCMSketch(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiment.RunSCMAblation(cfg)
	}
}

func BenchmarkAblation_UpdateModes(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiment.RunUpdateAblation(cfg)
	}
}

func BenchmarkAblation_MembershipZoo(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiment.RunMembershipZoo(cfg)
	}
}

func BenchmarkAblation_MultiSetAssociation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if figs := experiment.RunMultiSetAblation(cfg); len(figs) != 3 {
			b.Fatal("wrong figure count")
		}
	}
}

func BenchmarkAblation_UpdateThroughput(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if tab := experiment.RunUpdateTable(cfg); len(tab.Rows) != 5 {
			b.Fatal("wrong row count")
		}
	}
}

// --- Scheme micro-benchmarks -------------------------------------------
//
// Mixed workload (half members, half negatives) over the Figure 9(b)
// operating point: m = 33024, n = 1000, k = 8.

const (
	microM = 33024
	microN = 1000
	microK = 8
)

func microWorkload(add func(e []byte)) [][]byte {
	rng := rand.New(rand.NewSource(99))
	queries := make([][]byte, 0, 2*microN)
	for i := 0; i < 2*microN; i++ {
		e := make([]byte, 13)
		rng.Read(e)
		e[0], e[1] = byte(i), byte(i>>8)
		if i < microN {
			add(e)
		}
		queries = append(queries, e)
	}
	rng.Shuffle(len(queries), func(i, j int) { queries[i], queries[j] = queries[j], queries[i] })
	return queries
}

func BenchmarkQueryShBFM(b *testing.B) {
	f, err := shbf.NewMembership(microM, microK)
	if err != nil {
		b.Fatal(err)
	}
	queries := microWorkload(f.Add)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(queries[i%len(queries)])
	}
}

func BenchmarkQueryBF(b *testing.B) {
	f, err := baseline.NewBF(microM, microK)
	if err != nil {
		b.Fatal(err)
	}
	queries := microWorkload(f.Add)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(queries[i%len(queries)])
	}
}

func BenchmarkQueryOneMemBF(b *testing.B) {
	f, err := baseline.NewOneMemBF(microM, microK)
	if err != nil {
		b.Fatal(err)
	}
	queries := microWorkload(f.Add)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(queries[i%len(queries)])
	}
}

func BenchmarkQueryKMBF(b *testing.B) {
	f, err := baseline.NewKMBF(microM, microK)
	if err != nil {
		b.Fatal(err)
	}
	queries := microWorkload(f.Add)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(queries[i%len(queries)])
	}
}

func BenchmarkAddShBFM(b *testing.B) {
	f, err := shbf.NewMembership(1<<22, microK)
	if err != nil {
		b.Fatal(err)
	}
	queries := microWorkload(func([]byte) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(queries[i%len(queries)])
	}
}

func BenchmarkAddBF(b *testing.B) {
	f, err := baseline.NewBF(1<<22, microK)
	if err != nil {
		b.Fatal(err)
	}
	queries := microWorkload(func([]byte) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(queries[i%len(queries)])
	}
}

func BenchmarkQueryAssociationShBFA(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	mk := func(n int, tag byte) [][]byte {
		out := make([][]byte, n)
		for i := range out {
			e := make([]byte, 13)
			rng.Read(e)
			e[0], e[1], e[12] = byte(i), byte(i>>8), tag
			out[i] = e
		}
		return out
	}
	s1, s2 := mk(5000, 1), mk(5000, 2)
	a, err := shbf.BuildAssociation(s1, s2, 120000, microK)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Query(s1[i%len(s1)])
	}
}

func BenchmarkQueryMultiplicityShBFX(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	f, err := shbf.NewMultiplicity(1<<20, microK, 57)
	if err != nil {
		b.Fatal(err)
	}
	elems := make([][]byte, 4096)
	for i := range elems {
		e := make([]byte, 13)
		rng.Read(e)
		e[0], e[1] = byte(i), byte(i>>8)
		elems[i] = e
		if err := f.AddWithCount(e, rng.Intn(57)+1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Count(elems[i&4095])
	}
}
