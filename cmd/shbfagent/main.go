// Command shbfagent is the streaming-ingest edge agent: it accepts
// keys on stdin (one per line) and/or ShBU datagrams on a UDP listener,
// aggregates them locally, and periodically flushes upstream over ShBU
// — to a shbfd daemon (-udp-addr) or to another shbfagent, composing
// an aggregation topology (see internal/ingest and OPERATIONS.md §14).
//
// Usage:
//
//	shbfagent -to host:port [-namespace default] [-mode keys|envelope]
//	          [-flush 1s] [-source 0] [-max-datagram 1400]
//	          [-listen ""]
//	          [-bits N -k 8 -shards 16 -seed 1]
//	          [-dedup-n 0] [-dedup-fpr 0.01]
//	          [-stats-every 0]
//
// Two flush modes:
//
//   - keys: buffered keys are shipped as packed ShBU add-batches —
//     O(keys) on the wire, lowest latency, right for thin streams.
//     With -dedup-n, a local filter planned by shbf.PlanMembership
//     suppresses keys already sent this flush interval (a false
//     positive only drops a duplicate of an already-shipped key).
//   - envelope: keys are added to a local cumulative filter whose
//     geometry is given by -bits/-k/-shards/-seed — it MUST match the
//     destination namespace's membership filter, or merges are
//     refused — and each flush dumps the whole filter as a fragmented
//     ShBE envelope for union-merge: O(filter bits) on the wire no
//     matter how many keys arrived, and a lost flush is healed
//     entirely by the next one, because every flush carries the full
//     cumulative state.
//
// With -listen, the agent is also a forwarder: it accepts ShBU
// datagrams from downstream agents, merges their batches and (in
// envelope mode) their envelopes into its local state, and ships the
// union upstream on its own flush cadence — fan-in compression for
// agent → agent → daemon topologies.
//
// The transport is fire-and-forget UDP: nothing blocks, nothing
// retries, and loss is measured rather than repaired — receiver-side
// sequence accounting surfaces it in the daemon's shbf_udp_* metrics
// (and in this agent's own -stats-every log lines when forwarding).
package main

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shbf"
	"shbf/internal/core"
	"shbf/internal/ingest"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "shbfagent:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("shbfagent", flag.ContinueOnError)
	var (
		to       = fs.String("to", "", "upstream ShBU address (shbfd -udp-addr, or another shbfagent -listen)")
		nsName   = fs.String("namespace", "default", "destination namespace")
		mode     = fs.String("mode", "keys", "flush mode: keys (packed add-batches) or envelope (cumulative filter union)")
		flush    = fs.Duration("flush", time.Second, "flush interval (0 = only at stdin EOF and shutdown)")
		source   = fs.Uint64("source", 0, "source id stamped on every datagram (0 = random)")
		maxDgram = fs.Int("max-datagram", ingest.DefaultDatagram, "largest UDP payload to send")
		listen   = fs.String("listen", "", "also accept ShBU datagrams here and forward the merged state (empty = stdin only)")
		bits     = fs.Int("bits", 1<<20, "envelope mode: local filter bits — must match the destination namespace")
		k        = fs.Int("k", 8, "envelope mode: bit positions per key — must match the destination namespace")
		shards   = fs.Int("shards", 16, "envelope mode: filter shards — must match the destination namespace")
		seed     = fs.Uint64("seed", 1, "envelope mode: hash seed — must match the destination namespace")
		dedupN   = fs.Int("dedup-n", 0, "keys mode: expected distinct keys per flush interval for the local dedup filter (0 = no dedup)")
		dedupFPR = fs.Float64("dedup-fpr", 0.01, "keys mode: dedup filter false-positive target")
		statsEvr = fs.Duration("stats-every", 0, "log agent (and forwarder) stats on this interval (0 = only at exit)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to == "" {
		return errors.New("-to is required")
	}
	if *source == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return fmt.Errorf("random source id: %w", err)
		}
		*source = binary.LittleEndian.Uint64(b[:]) | 1 // never zero
	}

	cfg := ingest.AgentConfig{
		Namespace:   *nsName,
		Source:      *source,
		MaxDatagram: *maxDgram,
	}
	switch *mode {
	case "keys":
		cfg.Mode = ingest.ModeKeys
		if *dedupN > 0 {
			plan, err := shbf.PlanMembership(*dedupN, *dedupFPR)
			if err != nil {
				return fmt.Errorf("dedup plan: %w", err)
			}
			f, err := shbf.New(plan.Spec())
			if err != nil {
				return fmt.Errorf("dedup filter: %w", err)
			}
			cfg.Filter = f
			log.Printf("shbfagent: dedup filter: %d bits, k=%d (n=%d, fpr=%g)",
				plan.M, plan.K, *dedupN, *dedupFPR)
		}
	case "envelope":
		cfg.Mode = ingest.ModeEnvelope
		f, err := shbf.NewShardedMembership(*bits, *k, *shards, core.WithSeed(*seed))
		if err != nil {
			return fmt.Errorf("local filter: %w", err)
		}
		cfg.Filter = f
	default:
		return fmt.Errorf("unknown -mode %q (want keys or envelope)", *mode)
	}

	conn, err := net.Dial("udp", *to)
	if err != nil {
		return fmt.Errorf("upstream: %w", err)
	}
	defer conn.Close()
	agent, err := ingest.NewAgent(conn, cfg)
	if err != nil {
		return err
	}
	log.Printf("shbfagent: source %#x, %s mode, flushing to %s every %s",
		*source, *mode, *to, *flush)

	// Forwarder mode: a receiver feeds downstream agents' datagrams
	// into this agent's local state; our own flush ships the union.
	var recv *ingest.Receiver
	if *listen != "" {
		pc, err := net.ListenPacket("udp", *listen)
		if err != nil {
			return fmt.Errorf("listener: %w", err)
		}
		defer pc.Close()
		recv = ingest.NewReceiver(ingest.NewForwarder(agent))
		log.Printf("shbfagent: forwarding ShBU from %s", pc.LocalAddr())
		go func() {
			buf := make([]byte, ingest.MaxDatagram)
			for {
				n, _, err := pc.ReadFrom(buf)
				if err != nil {
					if !errors.Is(err, net.ErrClosed) {
						log.Printf("shbfagent: listener: %v", err)
					}
					return
				}
				recv.Process(buf[:n])
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Stdin keys, one per line; EOF closes the channel.
	lines := make(chan []byte, 1024)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			if key := append([]byte(nil), sc.Bytes()...); len(key) > 0 {
				lines <- key
			}
		}
		if err := sc.Err(); err != nil {
			log.Printf("shbfagent: stdin: %v", err)
		}
	}()

	var flushC <-chan time.Time
	if *flush > 0 {
		t := time.NewTicker(*flush)
		defer t.Stop()
		flushC = t.C
	}
	var statsC <-chan time.Time
	if *statsEvr > 0 {
		t := time.NewTicker(*statsEvr)
		defer t.Stop()
		statsC = t.C
	}
	logStats := func() {
		st := agent.Stats()
		line := fmt.Sprintf("sent %d datagrams (%d bytes) in %d flushes; %d keys added, %d deduped, %d buffered",
			st.DatagramsSent, st.BytesSent, st.Flushes, st.KeysAdded, st.KeysDeduped, st.Buffered)
		if recv != nil {
			rs := recv.Stats()
			line += fmt.Sprintf("; forwarded from %d sources: %d batches + %d fragments applied, est. loss %.2f%%",
				rs.Sources, rs.AppliedBatch, rs.AppliedEnvelope, 100*rs.LossRatio())
		}
		log.Print("shbfagent: ", line)
	}

	for {
		select {
		case key, ok := <-lines:
			if !ok {
				// Stdin is done: flush what's buffered. A pure stdin
				// agent exits here; a forwarder keeps serving its
				// listener until signalled.
				if err := agent.Flush(); err != nil {
					return fmt.Errorf("flush: %w", err)
				}
				if *listen == "" {
					logStats()
					return nil
				}
				lines = nil
				continue
			}
			if err := agent.Add(key); err != nil {
				return fmt.Errorf("add: %w", err)
			}
		case <-flushC:
			if err := agent.Flush(); err != nil {
				log.Printf("shbfagent: flush: %v", err)
			}
		case <-statsC:
			logStats()
		case <-ctx.Done():
			if err := agent.Flush(); err != nil {
				log.Printf("shbfagent: final flush: %v", err)
			}
			logStats()
			return nil
		}
	}
}
