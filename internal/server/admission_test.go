package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// postStatus posts body as JSON and returns the raw response, for
// asserting on failure statuses the post helper would t.Fatal on.
func postStatus(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRateLimiterShedsWritesFirst pins the token-bucket policy: writes
// need a quarter-bucket reserve, reads only their own tokens, refill
// is continuous and capped at burst.
func TestRateLimiterShedsWritesFirst(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newRateLimiter(1, 8) // 1 token/s, bucket of 8, starts full

	if !l.admit(5, true, now) { // needs 5+2=7 of 8
		t.Fatal("write of 5 with a full bucket of 8 shed")
	}
	if l.admit(2, true, now) { // needs 2+2=4, only 3 left
		t.Fatal("write of 2 admitted past the quarter-bucket reserve")
	}
	if !l.admit(2, false, now) { // reads take the bucket to the floor
		t.Fatal("read of 2 shed with 3 tokens left")
	}
	if l.admit(2, false, now) { // only 1 token left
		t.Fatal("read of 2 admitted with 1 token left")
	}
	if !l.admit(8, false, now.Add(10*time.Second)) { // refill caps at burst
		t.Fatal("read of 8 shed after a full refill")
	}
	if l.admit(1, false, now) { // clock must never run backwards a refund
		t.Fatal("read admitted on a rewound clock")
	}
}

// TestFrameGate pins the in-flight cap: writes shed at ¾ of the cap,
// reads at the cap, release reopens slots.
func TestFrameGate(t *testing.T) {
	g := newFrameGate(4) // write cap 3
	for i := 0; i < 3; i++ {
		if err := g.acquire(true); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := g.acquire(true); !IsOverloaded(err) {
		t.Fatalf("write past ¾ cap: got %v, want overloaded", err)
	}
	if err := g.acquire(false); err != nil { // reads run to the full cap
		t.Fatalf("read at cap: %v", err)
	}
	if err := g.acquire(false); !IsOverloaded(err) {
		t.Fatalf("read past cap: got %v, want overloaded", err)
	}
	g.release()
	if err := g.acquire(false); err != nil {
		t.Fatalf("read after release: %v", err)
	}
	if newFrameGate(0) != nil {
		t.Fatal("cap 0 must mean unlimited (nil gate)")
	}
	var unlimited *frameGate
	if err := unlimited.acquire(true); err != nil {
		t.Fatalf("nil gate must admit: %v", err)
	}
	unlimited.release()
}

// TestNamespaceMaxBitsIsAConfigError: a tenant whose geometry exceeds
// its own bit budget is rejected at create with 400 — the operator
// mis-sized the tenant; nothing is overloaded.
func TestNamespaceMaxBitsIsAConfigError(t *testing.T) {
	ts := newTestServer(t, testConfig())
	resp := postStatus(t, ts.URL+"/v2/namespaces",
		map[string]any{"name": "overbudget", "max_bits": 1024})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	// A right-sized budget is accepted.
	post(t, ts.URL+"/v2/namespaces",
		map[string]any{"name": "budgeted", "max_bits": 1 << 30}, 201, nil)
}

// TestMemoryCeilingShedsCreates: creations past Config.MaxTotalBits
// answer 429, deletion refunds the budget, and a restored snapshot
// re-meters it.
func TestMemoryCeilingShedsCreates(t *testing.T) {
	base, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	perTenant := base.usedBits // every tenant inheriting the base geometry costs this

	cfg := testConfig()
	cfg.MaxTotalBits = perTenant*2 + perTenant/2 // default + one tenant, not two
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateNamespace(NamespaceConfig{Name: "t1"}); err != nil {
		t.Fatalf("first tenant under the ceiling: %v", err)
	}
	err = s.CreateNamespace(NamespaceConfig{Name: "t2"})
	if !IsOverloaded(err) {
		t.Fatalf("second tenant past the ceiling: got %v, want overloaded", err)
	}
	if err := s.DeleteNamespace("t1"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateNamespace(NamespaceConfig{Name: "t2"}); err != nil {
		t.Fatalf("tenant after the refund: %v", err)
	}

	// Over HTTP the same shed is a 429 with the error body shape every
	// other failure uses.
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	resp := postStatus(t, ts.URL+"/v2/namespaces", map[string]any{"name": "t3"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP create past ceiling: status %d, want 429", resp.StatusCode)
	}

	// A daemon whose default namespace alone busts the ceiling must
	// refuse to start — silently serving past the ceiling hides the
	// misconfiguration until the next create.
	tiny := testConfig()
	tiny.MaxTotalBits = 1024
	if _, err := New(tiny); err == nil || !strings.Contains(err.Error(), "ceiling") {
		t.Fatalf("New under an impossible ceiling: got %v, want ceiling error", err)
	}
}

// TestRateQuotaOverHTTP drives a quota-bearing tenant to exhaustion
// over the HTTP transport: writes shed first (429), reads keep
// answering, and the shed response carries the admission message.
func TestRateQuotaOverHTTP(t *testing.T) {
	ts := newTestServer(t, testConfig())
	post(t, ts.URL+"/v2/namespaces",
		map[string]any{"name": "metered", "rate_per_sec": 0.001, "rate_burst": 8}, 201, nil)

	// Burst 8, negligible refill: a write of 5 fits (5+2 reserve ≤ 8),
	// the next write of 2 hits the reserve, a read of 2 still answers.
	keys5 := []string{"a", "b", "c", "d", "e"}
	post(t, ts.URL+"/v2/namespaces/metered/membership/add", map[string]any{"keys": keys5}, 200, nil)

	resp := postStatus(t, ts.URL+"/v2/namespaces/metered/membership/add",
		map[string]any{"keys": []string{"f", "g"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed write: status %d, want 429", resp.StatusCode)
	}

	var res struct {
		Results []bool `json:"results"`
	}
	post(t, ts.URL+"/v2/namespaces/metered/membership/contains",
		map[string]any{"keys": []string{"a", "b"}}, 200, &res)
	if !res.Results[0] || !res.Results[1] {
		t.Fatal("reads must keep answering while writes shed")
	}

	// The default namespace has no quota: the v1 byte-frozen surface
	// is untouched by admission control.
	post(t, ts.URL+"/v1/membership/add", map[string]any{"keys": keys5}, 200, nil)
}
