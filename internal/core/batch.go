package core

import (
	"fmt"

	"shbf/internal/hashing"
)

// This file adds the batch-first query surface: every hot-path
// operation also exists in a slice form so serving layers hand the
// filter a whole request batch at once. The flagship Membership batch
// paths run in two phases — digest every key, then probe with the
// cached digests — so the keys' independent digest chains pipeline
// across loop iterations; the other core kinds keep simple loops
// (each already one digest pass per key). internal/sharded adds the
// second batch win: grouping keys by shard takes each shard lock once
// per batch instead of once per key.
//
// All ContainsAll/CountAll/QueryAll variants share the dst convention
// of append-style APIs: the result slice is dst resized to len(keys)
// (reallocated only when dst is too small), so steady-state serving
// loops stay allocation-free.

// resizeSlice resizes dst to n, reusing its backing array when
// possible.
func resizeSlice[T any](dst []T, n int) []T {
	if cap(dst) < n {
		return make([]T, n)
	}
	return dst[:n]
}

// AddAll inserts every key. The error is always nil for the static
// membership filter; the signature matches the batch interface shared
// with the counting kinds, whose inserts can fail.
//
// Like ContainsAll, the batch runs in two phases over the filter's
// digest scratch: digesting back to back lets consecutive keys'
// independent hash chains overlap in the pipeline, which the
// interleaved digest-then-probe order of a scalar loop cannot.
func (f *Membership) AddAll(keys [][]byte) error {
	ds := f.digestAll(keys)
	for _, d := range ds {
		f.AddDigest(d)
	}
	return nil
}

// ContainsAll queries every key, writing answers into dst (resized to
// len(keys)) and returning it. Phase one digests every key (one pass
// each, pipelined across keys); phase two probes with the cached
// digests.
func (f *Membership) ContainsAll(dst []bool, keys [][]byte) []bool {
	dst = resizeSlice(dst, len(keys))
	ds := f.digestAll(keys)
	for i, d := range ds {
		dst[i] = f.ContainsDigest(d)
	}
	return dst
}

// digestAll fills the filter's digest scratch with the keys' digests.
// The scratch lives on the filter (which is single-goroutine by
// contract), so steady-state batches do not allocate.
func (f *Membership) digestAll(keys [][]byte) []hashing.Digest {
	f.dscratch = resizeSlice(f.dscratch, len(keys))
	for i, e := range keys {
		f.dscratch[i] = f.fam.Digest(e)
	}
	return f.dscratch
}

// AddAll inserts every key.
func (f *TShift) AddAll(keys [][]byte) error {
	for _, e := range keys {
		f.Add(e)
	}
	return nil
}

// ContainsAll queries every key, writing answers into dst (resized to
// len(keys)) and returning it.
func (f *TShift) ContainsAll(dst []bool, keys [][]byte) []bool {
	dst = resizeSlice(dst, len(keys))
	for i, e := range keys {
		dst[i] = f.Contains(e)
	}
	return dst
}

// AddAll inserts every key, stopping at the first failed insert.
// Earlier keys stay inserted; the error reports the failing index.
func (c *CountingMembership) AddAll(keys [][]byte) error {
	for i, e := range keys {
		if err := c.Insert(e); err != nil {
			return fmt.Errorf("key %d: %w", i, err)
		}
	}
	return nil
}

// ContainsAll queries every key, writing answers into dst (resized to
// len(keys)) and returning it.
func (c *CountingMembership) ContainsAll(dst []bool, keys [][]byte) []bool {
	return c.filter.ContainsAll(dst, keys)
}

// CountAll queries every key's multiplicity, writing answers into dst
// (resized to len(keys)) and returning it.
func (f *Multiplicity) CountAll(dst []int, keys [][]byte) []int {
	dst = resizeSlice(dst, len(keys))
	for i, e := range keys {
		dst[i] = f.Count(e)
	}
	return dst
}

// AddAll increments every key's multiplicity by one, stopping at the
// first failed insert. Earlier keys stay applied; the error reports
// the failing index.
func (f *CountingMultiplicity) AddAll(keys [][]byte) error {
	for i, e := range keys {
		if err := f.Insert(e); err != nil {
			return fmt.Errorf("key %d: %w", i, err)
		}
	}
	return nil
}

// CountAll queries every key's multiplicity, writing answers into dst
// (resized to len(keys)) and returning it.
func (f *CountingMultiplicity) CountAll(dst []int, keys [][]byte) []int {
	dst = resizeSlice(dst, len(keys))
	for i, e := range keys {
		dst[i] = f.Count(e)
	}
	return dst
}

// QueryAll classifies every key, writing candidate-region masks into
// dst (resized to len(keys)) and returning it.
func (a *Association) QueryAll(dst []Region, keys [][]byte) []Region {
	dst = resizeSlice(dst, len(keys))
	for i, e := range keys {
		dst[i] = a.Query(e)
	}
	return dst
}

// QueryAll classifies every key, writing candidate-region masks into
// dst (resized to len(keys)) and returning it.
func (a *CountingAssociation) QueryAll(dst []Region, keys [][]byte) []Region {
	dst = resizeSlice(dst, len(keys))
	for i, e := range keys {
		dst[i] = a.Query(e)
	}
	return dst
}

// AddAll increments every key's count by one.
func (s *SCMSketch) AddAll(keys [][]byte) error {
	for _, e := range keys {
		s.Insert(e)
	}
	return nil
}
