package baseline

import (
	"math"
	"testing"
)

func buildIBFSets(n1only, nBoth, n2only int, seed int64) (s1only, both, s2only [][]byte) {
	all := genElements(n1only+nBoth+n2only, seed)
	for i, e := range all {
		switch {
		case i < n1only:
			e[11] = 1
		case i < n1only+nBoth:
			e[11] = 2
		default:
			e[11] = 3
		}
	}
	return all[:n1only], all[n1only : n1only+nBoth], all[n1only+nBoth:]
}

func TestIBFNoFalseNegatives(t *testing.T) {
	s1only, both, s2only := buildIBFSets(500, 200, 500, 1)
	s1 := append(append([][]byte{}, s1only...), both...)
	s2 := append(append([][]byte{}, s2only...), both...)
	f, err := BuildIBF(s1, s2, 10000, 10000, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range s1 {
		if !f.Query(e).In1 {
			t.Fatal("false negative in BF1")
		}
	}
	for _, e := range s2 {
		if !f.Query(e).In2 {
			t.Fatal("false negative in BF2")
		}
	}
	if f.BF1().N() != len(s1) || f.BF2().N() != len(s2) {
		t.Fatalf("set sizes %d/%d", f.BF1().N(), f.BF2().N())
	}
}

func TestIBFClearAnswerSemantics(t *testing.T) {
	tests := []struct {
		a     IBFAnswer
		clear bool
		str   string
	}{
		{IBFAnswer{true, false}, true, "S1−S2"},
		{IBFAnswer{false, true}, true, "S2−S1"},
		{IBFAnswer{true, true}, false, "S1∩S2 (unverifiable)"},
		{IBFAnswer{false, false}, false, "∅"},
	}
	for _, tt := range tests {
		if got := tt.a.Clear(); got != tt.clear {
			t.Errorf("%+v.Clear() = %v, want %v", tt.a, got, tt.clear)
		}
		if got := tt.a.String(); got != tt.str {
			t.Errorf("%+v.String() = %q, want %q", tt.a, got, tt.str)
		}
	}
}

func TestIBFClearAnswerRateMatchesTable2(t *testing.T) {
	// Table 2: with optimal sizing m1+m2 = (n1+n2)k/ln2 and queries
	// hitting the three regions uniformly, P(clear) = (2/3)(1−0.5^k).
	const k = 10
	s1only, both, s2only := buildIBFSets(3000, 3000, 3000, 2)
	s1 := append(append([][]byte{}, s1only...), both...)
	s2 := append(append([][]byte{}, s2only...), both...)
	m1 := int(float64(len(s1)) * k / math.Ln2)
	m2 := int(float64(len(s2)) * k / math.Ln2)
	f, err := BuildIBF(s1, s2, m1, m2, k, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	clear, total := 0, 0
	for _, group := range [][][]byte{s1only, both, s2only} {
		for _, e := range group {
			if f.Query(e).Clear() {
				clear++
			}
			total++
		}
	}
	got := float64(clear) / float64(total)
	want := 2.0 / 3 * (1 - math.Pow(0.5, k))
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("clear rate %.4f vs theory %.4f", got, want)
	}
}

func TestIBFIntersectionNeverClear(t *testing.T) {
	// True intersection elements always double-hit: never clear — the
	// structural weakness ShBF_A fixes.
	s1only, both, s2only := buildIBFSets(100, 100, 100, 3)
	s1 := append(append([][]byte{}, s1only...), both...)
	s2 := append(append([][]byte{}, s2only...), both...)
	f, err := BuildIBF(s1, s2, 5000, 5000, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range both {
		if f.Query(e).Clear() {
			t.Fatal("intersection element produced a clear answer")
		}
	}
}

func TestIBFHashOps(t *testing.T) {
	f, err := BuildIBF(nil, nil, 100, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.HashOpsPerQuery(); got != 16 {
		t.Fatalf("HashOpsPerQuery = %d, want 2k = 16", got)
	}
	if f.SizeBytes() != f.BF1().SizeBytes()+f.BF2().SizeBytes() {
		t.Fatal("SizeBytes mismatch")
	}
}

func TestIBFInvalidSizes(t *testing.T) {
	if _, err := BuildIBF(nil, nil, 0, 100, 4); err == nil {
		t.Error("accepted m1=0")
	}
	if _, err := BuildIBF(nil, nil, 100, 0, 4); err == nil {
		t.Error("accepted m2=0")
	}
}
