package server

import (
	"errors"
	"net/http"

	"shbf"
)

// Rotation of the daemon's sliding windows. A windowed namespace's
// three filters implement shbf.Windowed; rotating the namespace walks
// them, retiring each one's oldest generation under its striped shard
// locks, so queries keep flowing on every shard a rotation is not
// currently touching. Three drivers share this path: the per-tenant
// POST /v2/namespaces/{ns}/rotate, the v1 shim POST /v1/rotate
// (default namespace), and shbfd's -tick loop (RotateAll). All of them
// serialize on Server.rotMu so a rotation-consistent snapshot can
// exclude rotations entirely and capture every ring at one epoch.

// ErrNotWindowed reports a rotation request against a namespace whose
// filters are classic unbounded ones (no -window / window_generations).
var ErrNotWindowed = errors.New("server: filters are not windowed (start shbfd with -window)")

// rotate retires the oldest generation of each of the namespace's
// windowed filters and returns the names of the filters rotated. A
// classic namespace returns ErrNotWindowed.
func (s *Server) rotate(ns *namespace) ([]string, error) {
	s.rotMu.Lock()
	defer s.rotMu.Unlock()
	var rotated []string
	for _, f := range ns.filters() {
		w, ok := f.filter.(shbf.Windowed)
		if !ok {
			continue
		}
		if err := w.Rotate(); err != nil {
			return rotated, err
		}
		rotated = append(rotated, f.name)
	}
	if len(rotated) == 0 {
		return nil, ErrNotWindowed
	}
	ns.stats.rotations.Add(1)
	return rotated, nil
}

// Rotate retires the oldest generation of the default namespace's
// windowed filters — the v1 behavior. Safe for concurrent use.
func (s *Server) Rotate() ([]string, error) {
	return s.rotate(s.defaultNS())
}

// RotateNamespace rotates one tenant's window.
func (s *Server) RotateNamespace(name string) ([]string, error) {
	ns, err := s.lookup(name)
	if err != nil {
		return nil, err
	}
	return s.rotate(ns)
}

// RotateAll rotates every windowed namespace (the shbfd -tick driver)
// and returns the names of the tenants rotated. With no windowed
// tenant at all it returns ErrNotWindowed, so the tick loop can shut
// its ticker down.
func (s *Server) RotateAll() ([]string, error) {
	var rotated []string
	for _, ns := range s.snapshotList() {
		// Frozen tenants are read-only; the tick loop skips them
		// rather than erroring the whole sweep.
		if !ns.windowed() || ns.frozen.Load() {
			continue
		}
		if _, err := s.rotate(ns); err != nil {
			return rotated, err
		}
		rotated = append(rotated, ns.name)
	}
	if len(rotated) == 0 {
		return nil, ErrNotWindowed
	}
	return rotated, nil
}

// Windowed reports whether the default namespace's filters rotate
// (i.e. were built with Config.WindowGenerations ≥ 2 or restored from
// a windowed snapshot).
func (s *Server) Windowed() bool {
	return s.defaultNS().windowed()
}

// nsRotate serves POST /v1/rotate (default namespace) and
// POST /v2/namespaces/{ns}/rotate: one whole-namespace rotation,
// answering with the rotated filters and their new epoch.
func (s *Server) nsRotate(ns *namespace, w http.ResponseWriter, r *http.Request) {
	if err := ns.writable(); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	rotated, err := s.rotate(ns)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNotWindowed) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	epoch := uint64(0)
	if win, ok := ns.mem.(shbf.Windowed); ok {
		epoch = win.Window().Epoch
	}
	writeJSON(w, http.StatusOK, map[string]any{"rotated": rotated, "epoch": epoch})
}
