package shbf_test

// Runnable godoc examples for the public API. Each demonstrates one
// capability with deterministic output.

import (
	"fmt"

	"shbf"
)

func ExampleNewCountingMembership() {
	f, _ := shbf.NewCountingMembership(10000, 8, shbf.WithCounterWidth(8))
	flow := []byte("10.0.0.1:443->10.0.0.9:5501/tcp")

	_ = f.Insert(flow)
	fmt.Println("after insert:", f.Contains(flow))
	_ = f.Delete(flow)
	fmt.Println("after delete:", f.Contains(flow))
	// Output:
	// after insert: true
	// after delete: false
}

func ExampleNewWindow() {
	// A sliding-window membership filter: 3 generations of ShBF_M.
	// Writes go to the head generation; each Rotate retires the
	// oldest, so a key expires 2..3 rotations after its last Add and
	// memory stays at 3 × one filter forever.
	f, _ := shbf.NewWindow(
		shbf.Spec{Kind: shbf.KindMembership, M: 65536, K: 8, Seed: 1},
		shbf.WindowOpts{Generations: 3},
	)
	set := f.(shbf.Set)      // the base kind's query surface
	win := f.(shbf.Windowed) // the rotation surface

	flow := []byte("10.0.0.1:443->10.0.0.9:5501/tcp")
	set.Add(flow)
	fmt.Println("fresh:", set.Contains(flow))
	for i := 0; i < 2; i++ {
		_ = win.Rotate()
	}
	fmt.Println("after 2 rotations:", set.Contains(flow))
	_ = win.Rotate()
	fmt.Println("after 3 rotations:", set.Contains(flow), "— expired")
	fmt.Println("epoch:", win.Window().Epoch)
	// Output:
	// fresh: true
	// after 2 rotations: true
	// after 3 rotations: false — expired
	// epoch: 3
}

func ExampleMultiplicity_Candidates() {
	f, _ := shbf.NewMultiplicity(10000, 8, 57)
	_ = f.AddWithCount([]byte("elephant flow"), 24)

	var cands []int
	cands = f.Candidates([]byte("elephant flow"), cands)
	fmt.Println("candidates:", cands)
	fmt.Println("reported:", f.Count([]byte("elephant flow")))
	// Output:
	// candidates: [24]
	// reported: 24
}

func ExampleNewTShift() {
	// k = 12 bit positions from only k/(t+1)+t = 3+3 = 6 hash
	// computations (paper Section 3.6).
	f, _ := shbf.NewTShift(10000, 12, 3)
	f.Add([]byte("element"))
	fmt.Println(f.Contains([]byte("element")), f.HashOpsPerAdd())
	// Output:
	// true 6
}

func ExampleNewCountingAssociation() {
	a, _ := shbf.NewCountingAssociation(10000, 8, shbf.WithCounterWidth(8))
	item := []byte("object-42")

	_ = a.InsertS1(item)
	fmt.Println(a.Query(item))
	_ = a.InsertS2(item) // replicate: region migrates to S1∩S2
	fmt.Println(a.Query(item))
	_ = a.DeleteS1(item) // retire from server 1
	fmt.Println(a.Query(item))
	// Output:
	// S1−S2
	// S1∩S2
	// S2−S1
}

func ExampleBuildMultiAssociation() {
	sets := [][][]byte{
		{[]byte("alpha")},
		{[]byte("beta"), []byte("everywhere")},
		{[]byte("gamma"), []byte("everywhere")},
	}
	a, _ := shbf.BuildMultiAssociation(sets, 2000, 8)

	ans := a.Query([]byte("everywhere"))
	fmt.Println("clear:", ans.Clear())
	fmt.Println("in set 1:", ans.DefinitelyIn(1))
	fmt.Println("in set 0:", ans.DefinitelyIn(0))
	// Output:
	// clear: true
	// in set 1: true
	// in set 0: false
}

func ExampleMembership_MarshalBinary() {
	built, _ := shbf.NewMembership(10000, 8, shbf.WithSeed(1))
	built.Add([]byte("ship me"))

	blob, _ := built.MarshalBinary()

	var remote shbf.Membership
	_ = remote.UnmarshalBinary(blob)
	fmt.Println(remote.Contains([]byte("ship me")))
	// Output:
	// true
}

func ExampleMembership_Union() {
	// Filters with the same geometry and seed support set algebra.
	a, _ := shbf.NewMembership(10000, 8, shbf.WithSeed(3))
	b, _ := shbf.NewMembership(10000, 8, shbf.WithSeed(3))
	a.Add([]byte("left"))
	b.Add([]byte("right"))

	_ = a.Union(b)
	fmt.Println(a.Contains([]byte("left")), a.Contains([]byte("right")))
	// Output:
	// true true
}

func ExamplePlanMembership() {
	plan, _ := shbf.PlanMembership(1_000_000, 0.001)
	fmt.Printf("k=%d, ~%.0f bits/element, predicted FPR below target: %v\n",
		plan.K, plan.BitsPerElem, plan.PredictedFPR <= 0.001)
	// Output:
	// k=10, ~15 bits/element, predicted FPR below target: true
}

func ExampleAccessCounter() {
	var acc shbf.AccessCounter
	f, _ := shbf.NewMembership(10000, 8, shbf.WithAccessCounter(&acc))
	f.Add([]byte("e"))

	acc.Reset()
	f.Contains([]byte("e"))
	fmt.Println("accesses for a member query:", acc.Reads())
	// Output:
	// accesses for a member query: 4
}

func ExampleNewSCMSketch() {
	s, _ := shbf.NewSCMSketch(8, 1<<16)
	for i := 0; i < 5; i++ {
		s.Insert([]byte("hot key"))
	}
	fmt.Println(s.Count([]byte("hot key")), s.HashOpsPerOp())
	// Output:
	// 5 5
}
