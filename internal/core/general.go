package core

import (
	"fmt"

	"shbf/internal/bitvec"
	"shbf/internal/hashing"
)

// TShift is the generalized ShBF_M of paper Section 3.6: instead of one
// offset per base hash (t = 1, which is exactly ShBF_M), it uses groups
// of t+1 positions — one base hash plus t shifted copies — so k bit
// positions require only k/(t+1) base hash functions plus t offset
// functions, k/(t+1)+t hash computations in total.
//
// Following the paper's partitioned construction ("the output of each
// hash function covers a distinct set of consecutive (w̄−1)/t bits"),
// the j-th offset is drawn from the j-th segment of the window:
//
//	o_j(e) = (j−1)·s + (h_{g+j}(e) mod s) + 1,  s = (w̄−1)/t
//
// so the t shifted bits land in disjoint segments of the w̄-bit window
// and the whole group is still read with one memory access.
type TShift struct {
	bits   *bitvec.Vector
	m      int
	k      int
	t      int
	groups int // k/(t+1) base hash functions
	seg    int // segment width s = (w̄−1)/t
	wbar   int
	fam    *hashing.Family // groups + t hashers
	seed   uint64
	n      int
	offs   []int // scratch: t offsets
}

// NewTShift returns an empty generalized filter with k total positions
// per element and t shifts per group. Requirements: t ≥ 1, (t+1) | k,
// and t ≤ w̄−1 so each segment holds at least one bit. NewTShift with
// t = 1 is behaviourally the ShBF_M construction.
func NewTShift(m, k, t int, opts ...Option) (*TShift, error) {
	cfg, err := buildConfig(KindTShift, opts)
	if err != nil {
		return nil, err
	}
	if m <= 0 {
		return nil, fmt.Errorf("core: m = %d must be positive", m)
	}
	if t < 1 {
		return nil, fmt.Errorf("core: t = %d must be ≥ 1", t)
	}
	if k < t+1 || k%(t+1) != 0 {
		return nil, fmt.Errorf("core: k = %d must be a positive multiple of t+1 = %d", k, t+1)
	}
	if cfg.maxOffset < 2 || cfg.maxOffset > 64 {
		return nil, fmt.Errorf("core: max offset w̄ = %d out of range [2,64]", cfg.maxOffset)
	}
	seg := (cfg.maxOffset - 1) / t
	if seg < 1 {
		return nil, fmt.Errorf("core: t = %d too large for w̄ = %d (empty segments)", t, cfg.maxOffset)
	}
	groups := k / (t + 1)
	f := &TShift{
		bits:   bitvec.New(m + cfg.maxOffset - 1),
		m:      m,
		k:      k,
		t:      t,
		groups: groups,
		seg:    seg,
		wbar:   cfg.maxOffset,
		fam:    hashing.NewFamily(groups+t, cfg.seed),
		seed:   cfg.seed,
		offs:   make([]int, t),
	}
	f.bits.SetCounter(cfg.counter)
	return f, nil
}

// M returns the base array size. K, T, N, and MaxOffset report the other
// parameters.
func (f *TShift) M() int         { return f.m }
func (f *TShift) K() int         { return f.k }
func (f *TShift) T() int         { return f.t }
func (f *TShift) N() int         { return f.n }
func (f *TShift) MaxOffset() int { return f.wbar }

// HashOpsPerAdd returns k/(t+1) + t, the paper's hashing budget for the
// generalized scheme.
func (f *TShift) HashOpsPerAdd() int { return f.groups + f.t }

// FillRatio returns the fraction of set bits.
func (f *TShift) FillRatio() float64 { return f.bits.FillRatio() }

// offsets fills f.offs with the t segment-partitioned offsets of the
// element whose digest is d.
func (f *TShift) offsets(d hashing.Digest) {
	for j := 0; j < f.t; j++ {
		h := f.fam.FromDigest(f.groups+j, d)
		f.offs[j] = j*f.seg + hashing.Reduce(h, f.seg) + 1
	}
}

// Add inserts e: for each of the k/(t+1) base positions, set the base
// bit and its t shifted copies. One digest pass, k/(t+1)+t mixes.
func (f *TShift) Add(e []byte) {
	f.addDigest(f.fam.Digest(e))
}

func (f *TShift) addDigest(d hashing.Digest) {
	f.offsets(d)
	for i := 0; i < f.groups; i++ {
		base := f.fam.ModFromDigest(i, d, f.m)
		f.bits.Set(base)
		for _, o := range f.offs {
			f.bits.Set(base + o)
		}
	}
	f.n++
}

// Contains reports whether e may be in the set. Each group is verified
// with a single w̄-bit window read; the scan stops at the first group
// whose t+1 bits are not all 1. The t offset mixes are computed only
// once the first base bit passes, so cheap rejections stay cheap.
func (f *TShift) Contains(e []byte) bool {
	return f.containsDigest(f.fam.Digest(e))
}

func (f *TShift) containsDigest(d hashing.Digest) bool {
	mask := uint64(0)
	for i := 0; i < f.groups; i++ {
		base := f.fam.ModFromDigest(i, d, f.m)
		win := f.bits.Window(base, f.wbar)
		if win&1 == 0 {
			return false
		}
		if mask == 0 {
			f.offsets(d)
			mask = 1
			for _, o := range f.offs {
				mask |= 1 << uint(o)
			}
		}
		if win&mask != mask {
			return false
		}
	}
	return true
}

// Reset clears the filter.
func (f *TShift) Reset() {
	f.bits.Reset()
	f.n = 0
}
