package experiment

import (
	"fmt"

	"shbf/internal/analytic"
	"shbf/internal/baseline"
	"shbf/internal/core"
	"shbf/internal/memmodel"
	"shbf/internal/trace"
	"shbf/internal/workload"
)

// membershipFilter is the query interface shared by every membership
// scheme under evaluation.
type membershipFilter interface {
	Add(e []byte)
	Contains(e []byte) bool
}

// measureFPR returns the false-positive rate of f over the probe set
// (all probes are guaranteed non-members).
func measureFPR(f membershipFilter, probes [][]byte) float64 {
	fp := 0
	for _, e := range probes {
		if f.Contains(e) {
			fp++
		}
	}
	return float64(fp) / float64(len(probes))
}

// RunFig3 reproduces Figure 3: the theoretical ShBF_M FPR (Equation 1)
// as a function of the maximum offset w̄, against the BF reference
// (Equation 8). (a) varies k at m=100000, n=10000; (b) varies m at
// k=10, n=10000. Pure analysis — no simulation.
func RunFig3(cfg Config) []*Figure {
	figA := &Figure{
		ID: "3a", Title: "FPR vs w̄ (m=100000, n=10000)",
		XLabel: "wbar", YLabel: "FP rate",
	}
	for _, k := range []int{4, 8, 12} {
		bf := analytic.FPRBF(100000, 10000, float64(k))
		for wbar := 4; wbar <= 64; wbar += 2 {
			figA.Add(fmt.Sprintf("ShBF_M k=%d", k), float64(wbar),
				analytic.FPRShBFM(100000, 10000, float64(k), wbar))
			figA.Add(fmt.Sprintf("BF k=%d", k), float64(wbar), bf)
		}
	}
	figA.Notes = append(figA.Notes, "w̄ ≥ 20 brings ShBF_M onto the BF line (paper Section 3.4.2)")

	figB := &Figure{
		ID: "3b", Title: "FPR vs w̄ (k=10, n=10000)",
		XLabel: "wbar", YLabel: "FP rate",
	}
	for _, m := range []int{100000, 110000, 120000} {
		bf := analytic.FPRBF(m, 10000, 10)
		for wbar := 4; wbar <= 64; wbar += 2 {
			figB.Add(fmt.Sprintf("ShBF_M m=%d", m), float64(wbar),
				analytic.FPRShBFM(m, 10000, 10, wbar))
			figB.Add(fmt.Sprintf("BF m=%d", m), float64(wbar), bf)
		}
	}
	return []*Figure{figA, figB}
}

// RunFig4 reproduces Figure 4: theoretical FPR vs k for ShBF_M (dashed
// in the paper) and BF (solid), m=100000, n ∈ {4000…12000}.
func RunFig4(cfg Config) []*Figure {
	fig := &Figure{
		ID: "4", Title: "ShBF_M FPR vs BF FPR (m=100000)",
		XLabel: "k", YLabel: "FP rate",
	}
	for _, n := range []int{4000, 6000, 8000, 10000, 12000} {
		for k := 2; k <= 20; k += 2 {
			fig.Add(fmt.Sprintf("ShBF_M n=%d", n), float64(k),
				analytic.FPRShBFM(100000, n, float64(k), core.DefaultMaxOffset))
			fig.Add(fmt.Sprintf("BF n=%d", n), float64(k),
				analytic.FPRBF(100000, n, float64(k)))
		}
	}
	fig.Notes = append(fig.Notes, "the sacrificed FPR of ShBF_M vs BF is negligible (paper Section 3.5)")
	return []*Figure{fig}
}

// fig7Point measures one Figure 7 configuration: ShBF_M simulation vs
// Equation 1, and 1MemBF at the same and 1.5× memory.
func fig7Point(cfg Config, m, n, k int, fig *Figure, x float64) {
	shbf := Repeat(cfg.Trials, func(trial int) float64 {
		gen := trace.NewGenerator(cfg.Seed + int64(trial))
		f, err := core.NewMembership(m, k, core.WithSeed(uint64(cfg.Seed)+uint64(trial)))
		if err != nil {
			panic(err)
		}
		for _, e := range trace.Bytes(gen.Distinct(n)) {
			f.Add(e)
		}
		return measureFPR(f, workload.Negatives(gen, cfg.Probes))
	})
	onemem := Repeat(cfg.Trials, func(trial int) float64 {
		gen := trace.NewGenerator(cfg.Seed + int64(trial))
		f, err := baseline.NewOneMemBF(m, k, baseline.WithSeed(uint64(cfg.Seed)+uint64(trial)))
		if err != nil {
			panic(err)
		}
		for _, e := range trace.Bytes(gen.Distinct(n)) {
			f.Add(e)
		}
		return measureFPR(f, workload.Negatives(gen, cfg.Probes))
	})
	onemem15 := Repeat(cfg.Trials, func(trial int) float64 {
		gen := trace.NewGenerator(cfg.Seed + int64(trial))
		f, err := baseline.NewOneMemBF(m*3/2, k, baseline.WithSeed(uint64(cfg.Seed)+uint64(trial)))
		if err != nil {
			panic(err)
		}
		for _, e := range trace.Bytes(gen.Distinct(n)) {
			f.Add(e)
		}
		return measureFPR(f, workload.Negatives(gen, cfg.Probes))
	})
	fig.Add("ShBF_M theory", x, analytic.FPRShBFM(m, n, float64(k), core.DefaultMaxOffset))
	fig.Add("ShBF_M sim", x, shbf)
	fig.Add("1MemBF (m)", x, onemem)
	fig.Add("1MemBF (1.5m)", x, onemem15)
}

// RunFig7 reproduces Figure 7: false-positive rates of ShBF_M (theory
// and simulation) against 1MemBF at equal and 1.5× memory, under the
// paper's exact parameter sweeps: (a) n with m=22008, k=8; (b) k with
// m=22976, n=2000; (c) m with n=4000, k=6. Probe counts are cfg.Probes
// per point (the paper uses 7M).
func RunFig7(cfg Config) []*Figure {
	figA := &Figure{ID: "7a", Title: "FPR vs n (m=22008, k=8)", XLabel: "n", YLabel: "FP rate"}
	for n := 1000; n <= 1500; n += 100 {
		fig7Point(cfg, 22008, n, 8, figA, float64(n))
	}

	figB := &Figure{ID: "7b", Title: "FPR vs k (m=22976, n=2000)", XLabel: "k", YLabel: "FP rate"}
	for k := 4; k <= 16; k += 2 {
		fig7Point(cfg, 22976, 2000, k, figB, float64(k))
	}

	figC := &Figure{ID: "7c", Title: "FPR vs m (n=4000, k=6)", XLabel: "m", YLabel: "FP rate"}
	for m := 32000; m <= 44000; m += 2000 {
		fig7Point(cfg, m, 4000, 6, figC, float64(m))
	}
	return []*Figure{figA, figB, figC}
}

// buildMixedWorkload inserts n elements into each provided filter and
// returns the Figure 8 query mix: the n members plus n fresh negatives,
// shuffled.
func buildMixedWorkload(cfg Config, trial, n int, filters ...membershipFilter) [][]byte {
	gen := trace.NewGenerator(cfg.Seed + int64(trial))
	members := trace.Bytes(gen.Distinct(n))
	for _, f := range filters {
		for _, e := range members {
			f.Add(e)
		}
	}
	return workload.Mixed(members, workload.Negatives(gen, n), cfg.Seed+int64(trial))
}

// fig8Point measures mean memory accesses per query for BF and ShBF_M
// on the 2n half-member workload of Section 6.2.2.
func fig8Point(cfg Config, m, n, k int, fig *Figure, x float64) {
	bfAcc := Repeat(cfg.Trials, func(trial int) float64 {
		var acc memmodel.Counter
		f, err := baseline.NewBF(m, k,
			baseline.WithSeed(uint64(cfg.Seed)+uint64(trial)), baseline.WithAccessCounter(&acc))
		if err != nil {
			panic(err)
		}
		queries := buildMixedWorkload(cfg, trial, n, f)
		acc.Reset()
		for _, e := range queries {
			f.Contains(e)
		}
		return float64(acc.Reads()) / float64(len(queries))
	})
	shAcc := Repeat(cfg.Trials, func(trial int) float64 {
		var acc memmodel.Counter
		f, err := core.NewMembership(m, k,
			core.WithSeed(uint64(cfg.Seed)+uint64(trial)), core.WithAccessCounter(&acc))
		if err != nil {
			panic(err)
		}
		queries := buildMixedWorkload(cfg, trial, n, f)
		acc.Reset()
		for _, e := range queries {
			f.Contains(e)
		}
		return float64(acc.Reads()) / float64(len(queries))
	})
	fig.Add("BF", x, bfAcc)
	fig.Add("ShBF_M", x, shAcc)
	fig.Add("BF theory", x, analytic.ExpectedAccessesBF(m, n, float64(k), 0.5))
	fig.Add("ShBF_M theory", x, analytic.ExpectedAccessesShBFM(m, n, float64(k), core.DefaultMaxOffset, 0.5))
}

// RunFig8 reproduces Figure 8: memory accesses per query, ShBF_M vs BF,
// on 2n queries of which n are members: (a) n sweep with m=22008, k=8;
// (b) k sweep with m=33024, n=1000; (c) m sweep with k=6, n=4000.
func RunFig8(cfg Config) []*Figure {
	figA := &Figure{ID: "8a", Title: "# memory accesses vs n (m=22008, k=8)", XLabel: "n", YLabel: "# memory accesses"}
	for n := 1000; n <= 1400; n += 100 {
		fig8Point(cfg, 22008, n, 8, figA, float64(n))
	}
	figB := &Figure{ID: "8b", Title: "# memory accesses vs k (m=33024, n=1000)", XLabel: "k", YLabel: "# memory accesses"}
	for k := 4; k <= 16; k += 2 {
		fig8Point(cfg, 33024, 1000, k, figB, float64(k))
	}
	figC := &Figure{ID: "8c", Title: "# memory accesses vs m (k=6, n=4000)", XLabel: "m", YLabel: "# memory accesses"}
	for m := 32000; m <= 44000; m += 2000 {
		fig8Point(cfg, m, 4000, 6, figC, float64(m))
	}
	return []*Figure{figA, figB, figC}
}

// fig9Point measures query throughput (Mqps) for BF, 1MemBF and ShBF_M
// on the mixed workload.
func fig9Point(cfg Config, m, n, k int, fig *Figure, x float64) {
	type candidate struct {
		name  string
		build func(seed uint64) (membershipFilter, error)
	}
	candidates := []candidate{
		{"BF", func(s uint64) (membershipFilter, error) { return baseline.NewBF(m, k, baseline.WithSeed(s)) }},
		{"1MemBF", func(s uint64) (membershipFilter, error) { return baseline.NewOneMemBF(m, k, baseline.WithSeed(s)) }},
		{"ShBF_M", func(s uint64) (membershipFilter, error) { return core.NewMembership(m, k, core.WithSeed(s)) }},
	}
	for _, c := range candidates {
		mqps := Repeat(cfg.Trials, func(trial int) float64 {
			f, err := c.build(uint64(cfg.Seed) + uint64(trial))
			if err != nil {
				panic(err)
			}
			queries := buildMixedWorkload(cfg, trial, n, f)
			return MeasureMqps(queries, cfg.MinTiming, func(e []byte) { f.Contains(e) })
		})
		fig.Add(c.name, x, mqps)
	}
}

// RunFig9 reproduces Figure 9: query throughput of ShBF_M vs BF vs
// 1MemBF: (a) n sweep with m=22008, k=8; (b) k sweep with m=33024,
// n=1000; (c) m sweep with k=8, n=4000.
func RunFig9(cfg Config) []*Figure {
	figA := &Figure{ID: "9a", Title: "query speed vs n (m=22008, k=8)", XLabel: "n", YLabel: "Mqps"}
	for n := 1000; n <= 2000; n += 200 {
		fig9Point(cfg, 22008, n, 8, figA, float64(n))
	}
	figB := &Figure{ID: "9b", Title: "query speed vs k (m=33024, n=1000)", XLabel: "k", YLabel: "Mqps"}
	for k := 4; k <= 16; k += 2 {
		fig9Point(cfg, 33024, 1000, k, figB, float64(k))
	}
	figC := &Figure{ID: "9c", Title: "query speed vs m (k=8, n=4000)", XLabel: "m", YLabel: "Mqps"}
	for m := 32000; m <= 44000; m += 2000 {
		fig9Point(cfg, m, 4000, 8, figC, float64(m))
	}
	return []*Figure{figA, figB, figC}
}
