package core

import (
	"fmt"
	"math/bits"

	"shbf/internal/bitvec"
	"shbf/internal/hashing"
	"shbf/internal/hashtable"
)

// MultiAssociation extends ShBF_A from two sets to g sets (2 ≤ g ≤ 5),
// the multi-set membership problem of the paper's Section 2.2 (kBF,
// Bloomier, Coded BF, Combinatorial BF, …). The framework generalizes
// directly: an element's *region* is the non-empty subset of sets that
// contain it — one of R = 2^g − 1 possibilities — and the region is
// encoded in the offset. Region 1 (only the first set) keeps offset 0;
// every other region r gets a per-element offset drawn from its own
// segment of the w̄-bit window:
//
//	o_r(e) = (r−2)·s + (h_r(e) mod s) + 1,  s = (w̄−1)/(R−1)
//
// so all R candidate positions of a query live in one window and are
// checked with k memory accesses, versus g·k for one BF per set.
//
// Like ShBF_A — and unlike the Section 2.2 schemes, which require the
// sets to be pairwise disjoint — overlapping sets are handled soundly:
// the true region is always among the candidates.
type MultiAssociation struct {
	bits    *bitvec.Vector
	m       int
	k       int
	g       int
	regions int // R = 2^g − 1
	seg     int // segment width s
	wbar    int
	fam     *hashing.Family // k base + (R−1) offset hashers
	seed    uint64
	sizes   []int // distinct elements per set at build time
}

// MaxMultiAssociationSets bounds g: with w̄ = 57 the window holds
// R−1 = 2^5−2 = 30 one-bit segments, and query cost grows with 2^g.
const MaxMultiAssociationSets = 5

// BuildMultiAssociation constructs the filter over g = len(sets) sets.
// Duplicates within a set are ignored; sets may overlap.
func BuildMultiAssociation(sets [][][]byte, m, k int, opts ...Option) (*MultiAssociation, error) {
	cfg, err := buildConfig(KindMultiAssociation, opts)
	if err != nil {
		return nil, err
	}
	g := len(sets)
	if g < 2 || g > MaxMultiAssociationSets {
		return nil, fmt.Errorf("core: %d sets out of range [2,%d]", g, MaxMultiAssociationSets)
	}
	if m <= 0 {
		return nil, fmt.Errorf("core: m = %d must be positive", m)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k = %d must be ≥ 1", k)
	}
	regions := 1<<g - 1
	if cfg.maxOffset < regions || cfg.maxOffset > 64 {
		return nil, fmt.Errorf("core: max offset w̄ = %d cannot host %d region segments", cfg.maxOffset, regions-1)
	}
	a := &MultiAssociation{
		bits:    bitvec.New(m + cfg.maxOffset - 1),
		m:       m,
		k:       k,
		g:       g,
		regions: regions,
		seg:     (cfg.maxOffset - 1) / (regions - 1),
		wbar:    cfg.maxOffset,
		fam:     hashing.NewFamily(k+regions-1, cfg.seed),
		seed:    cfg.seed,
		sizes:   make([]int, g),
	}
	a.bits.SetCounter(cfg.counter)

	// Membership tables, one per set (the Section 4.1 T_i idea).
	tables := make([]*hashtable.Table, g)
	for i := range tables {
		tables[i] = hashtable.New(cfg.seed + uint64(i) + 1)
		for _, e := range sets[i] {
			tables[i].Put(e, 1)
		}
		a.sizes[i] = tables[i].Len()
	}

	// Encode each distinct element of the union once, under its region.
	seen := hashtable.New(cfg.seed + 100)
	for i := range tables {
		tables[i].Range(func(e []byte, _ uint64) bool {
			if seen.Contains(e) {
				return true
			}
			seen.Put(e, 1)
			region := 0
			for j := range tables {
				if tables[j].Contains(e) {
					region |= 1 << j
				}
			}
			d := a.fam.Digest(e)
			a.encode(d, a.offsetFor(d, region))
			return true
		})
	}
	return a, nil
}

// offsetFor returns region r's per-element offset for the element
// digested as d; region 1 ({set 0}) anchors at 0.
func (a *MultiAssociation) offsetFor(d hashing.Digest, region int) int {
	if region == 1 {
		return 0
	}
	// Regions 2..R map to segments 0..R−2 and offset mixers k..k+R−2.
	idx := region - 2
	h := a.fam.FromDigest(a.k+idx, d)
	return idx*a.seg + hashing.Reduce(h, a.seg) + 1
}

func (a *MultiAssociation) encode(d hashing.Digest, o int) {
	for i := 0; i < a.k; i++ {
		a.bits.Set(a.fam.ModFromDigest(i, d, a.m) + o)
	}
}

// G returns the number of sets; M, K the geometry; SetSize the distinct
// size of set i at build time.
func (a *MultiAssociation) G() int            { return a.g }
func (a *MultiAssociation) M() int            { return a.m }
func (a *MultiAssociation) K() int            { return a.k }
func (a *MultiAssociation) SetSize(i int) int { return a.sizes[i] }

// SizeBytes returns the bit-array footprint.
func (a *MultiAssociation) SizeBytes() int { return a.bits.SizeBytes() }

// HashOpsPerQuery returns k + R − 1.
func (a *MultiAssociation) HashOpsPerQuery() int { return a.k + a.regions - 1 }

// MultiAnswer is the candidate-region set of a multi-association query:
// bit r−1 set means region r (a subset mask of sets) survived all k
// windows.
type MultiAnswer struct {
	candidates uint32
	g          int
}

// Clear reports whether exactly one region remains.
func (ans MultiAnswer) Clear() bool {
	return ans.candidates != 0 && ans.candidates&(ans.candidates-1) == 0
}

// Empty reports no surviving region: the element is in none of the sets
// (definitely — the construction has no false negatives).
func (ans MultiAnswer) Empty() bool { return ans.candidates == 0 }

// Contains reports whether the region with set-mask truth survived.
func (ans MultiAnswer) Contains(truthMask int) bool {
	if truthMask < 1 {
		return false
	}
	return ans.candidates&(1<<(truthMask-1)) != 0
}

// Region returns the surviving region's set mask when Clear, else 0.
func (ans MultiAnswer) Region() int {
	if !ans.Clear() {
		return 0
	}
	return bits.TrailingZeros32(ans.candidates) + 1
}

// DefinitelyIn reports whether every surviving region includes set i —
// the element is certainly in that set.
func (ans MultiAnswer) DefinitelyIn(i int) bool {
	if ans.candidates == 0 || i < 0 || i >= ans.g {
		return false
	}
	rest := ans.candidates
	for rest != 0 {
		r := bits.TrailingZeros32(rest) + 1
		if r&(1<<i) == 0 {
			return false
		}
		rest &= rest - 1
	}
	return true
}

// Query returns the candidate regions for e. For elements of the union
// the true region always survives; overlapping sets are first-class.
// One digest pass serves the R−1 region offsets and the k base
// positions.
func (a *MultiAssociation) Query(e []byte) MultiAnswer {
	d := a.fam.Digest(e)
	// Offsets for every region (region 1 ↦ 0 handled in the loop).
	var offs [31]int
	for r := 2; r <= a.regions; r++ {
		offs[r-1] = a.offsetFor(d, r)
	}

	cand := uint32(1)<<a.regions - 1
	for i := 0; i < a.k && cand != 0; i++ {
		win := a.bits.Window(a.fam.ModFromDigest(i, d, a.m), a.wbar)
		survived := uint32(win & 1) // region 1 at offset 0
		for r := 2; r <= a.regions; r++ {
			survived |= uint32(win>>uint(offs[r-1])&1) << (r - 1)
		}
		cand &= survived
	}
	return MultiAnswer{candidates: cand, g: a.g}
}
