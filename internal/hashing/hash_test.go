package hashing

import (
	"encoding/binary"
	"math"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomInputs(n, size int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		b := make([]byte, size)
		rng.Read(b)
		out[i] = b
	}
	return out
}

// sequentialInputs mimics structured keys (counters encoded as bytes),
// the adversarial case for weak mixers.
func sequentialInputs(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(i))
		out[i] = b
	}
	return out
}

func TestSum128Deterministic(t *testing.T) {
	h := New(42)
	data := []byte("5-tuple flow id!")
	lo1, hi1 := h.Sum128(data)
	lo2, hi2 := h.Sum128(data)
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatal("Sum128 is not deterministic")
	}
}

func TestSeedsProduceDifferentFunctions(t *testing.T) {
	a, b := New(1), New(2)
	data := []byte("hello")
	if a.Sum64(data) == b.Sum64(data) {
		t.Fatal("different seeds produced identical hashes (collision on first try is implausible)")
	}
}

func TestLengthExtension(t *testing.T) {
	// Inputs that are prefixes of each other must hash differently.
	h := New(7)
	seen := map[uint64][]byte{}
	data := make([]byte, 0, 40)
	for i := 0; i < 40; i++ {
		data = append(data, 0) // all-zero inputs of increasing length
		v := h.Sum64(data)
		if prev, ok := seen[v]; ok {
			t.Fatalf("zero inputs of lengths %d and %d collide", len(prev), len(data))
		}
		seen[v] = append([]byte(nil), data...)
	}
}

func TestTailBoundaries(t *testing.T) {
	// Exercise every tail length 0..16 around the 16-byte block boundary
	// and confirm single-byte changes in the tail change the hash.
	h := New(99)
	for size := 1; size <= 33; size++ {
		base := make([]byte, size)
		for i := range base {
			base[i] = byte(i * 7)
		}
		want := h.Sum64(base)
		for i := 0; i < size; i++ {
			mod := append([]byte(nil), base...)
			mod[i] ^= 0x80
			if h.Sum64(mod) == want {
				t.Fatalf("size %d: flipping byte %d did not change hash", size, i)
			}
		}
	}
}

func TestAvalanche(t *testing.T) {
	// Flipping one input bit should flip ~32 of 64 output bits on average.
	h := New(2024)
	rng := rand.New(rand.NewSource(5))
	const trials = 2000
	totalFlips := 0
	for i := 0; i < trials; i++ {
		data := make([]byte, 13) // the paper's flow-ID size
		rng.Read(data)
		ref := h.Sum64(data)
		bit := rng.Intn(13 * 8)
		data[bit/8] ^= 1 << uint(bit%8)
		totalFlips += bits.OnesCount64(ref ^ h.Sum64(data))
	}
	avg := float64(totalFlips) / trials
	if avg < 28 || avg > 36 {
		t.Fatalf("avalanche average = %.2f flipped bits, want ≈ 32", avg)
	}
}

func TestBitBalanceRandomInputs(t *testing.T) {
	// The paper's randomness criterion on random 13-byte flow IDs.
	h := New(1)
	inputs := randomInputs(100000, 13, 11)
	if !PassesBalance(h, inputs, 0.01) {
		fr := BitBalance(h, inputs)
		t.Fatalf("hash fails the paper's bit-balance test: max error %.4f", MaxBalanceError(fr))
	}
}

func TestBitBalanceSequentialInputs(t *testing.T) {
	h := New(3)
	if !PassesBalance(h, sequentialInputs(100000), 0.01) {
		t.Fatal("hash fails bit-balance on sequential inputs")
	}
}

func TestBitBalanceEmpty(t *testing.T) {
	var fr [64]float64
	got := BitBalance(New(1), nil)
	if got != fr {
		t.Fatal("BitBalance(nil) should be all zeros")
	}
	if MaxBalanceError(fr) != 0.5 {
		t.Fatalf("MaxBalanceError(zeros) = %v, want 0.5", MaxBalanceError(fr))
	}
}

func TestModRange(t *testing.T) {
	f := func(seed uint64, data []byte, m uint16) bool {
		if m == 0 {
			return true
		}
		v := New(seed).Mod(data, int(m))
		return v >= 0 && v < int(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModUniformity(t *testing.T) {
	// Chi-square-style sanity check: hashing 64k random inputs into 64
	// buckets should put roughly 1024 in each.
	h := New(77)
	const buckets, n = 64, 65536
	counts := make([]int, buckets)
	for _, in := range randomInputs(n, 13, 21) {
		counts[h.Mod(in, buckets)]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 63 degrees of freedom; mean 63, stddev ≈ 11.2. 63+5σ ≈ 120.
	if chi2 > 120 {
		t.Fatalf("chi-square = %.1f, distribution too skewed", chi2)
	}
}

func TestFamilyIndependence(t *testing.T) {
	// Positions produced by different family members for the same input
	// must be uncorrelated: measure collision rate between h_0 and h_1
	// over a modest modulus.
	fam := NewFamily(4, 9)
	const m, n = 1024, 50000
	coll := 0
	for _, in := range randomInputs(n, 13, 31) {
		if fam.Mod(0, in, m) == fam.Mod(1, in, m) {
			coll++
		}
	}
	rate := float64(coll) / n
	// Independent functions collide with probability 1/m ≈ 0.000977.
	if rate > 3.0/m {
		t.Fatalf("collision rate %.5f, want ≈ %.5f (functions correlated?)", rate, 1.0/m)
	}
}

func TestFamilyFromDigestMatchesScalar(t *testing.T) {
	// The digest-then-mix forms must agree exactly with the scalar
	// conveniences: one idiom, two spellings.
	fam := NewFamily(6, 123)
	data := []byte("element")
	d := fam.Digest(data)
	if d != KeyDigest(data) {
		t.Fatal("Family.Digest disagrees with KeyDigest")
	}
	for i := 0; i < fam.Len(); i++ {
		if got, want := fam.FromDigest(i, d), fam.Sum64(i, data); got != want {
			t.Errorf("FromDigest(%d) = %x, Sum64 = %x", i, got, want)
		}
		if got, want := fam.ModFromDigest(i, d, 100), fam.Mod(i, data, 100); got != want {
			t.Errorf("ModFromDigest(%d) = %d, Mod = %d", i, got, want)
		}
	}
}

func TestFamilyPositionsFromDigest(t *testing.T) {
	fam := NewFamily(8, 5)
	data := []byte("x")
	d := fam.Digest(data)
	got := fam.PositionsFromDigest(d, 5, 100, nil)
	if len(got) != 5 {
		t.Fatalf("PositionsFromDigest returned %d values, want 5", len(got))
	}
	for i, v := range got {
		if want := fam.Mod(i, data, 100); v != want {
			t.Errorf("PositionsFromDigest[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestKeyDigestSeedsMatchNew(t *testing.T) {
	// The folded keySeed1/keySeed2 constants must stay exactly the two
	// SplitMix64 lanes New derives from DigestSeed.
	if want := New(DigestSeed); (Hasher{seed1: keySeed1, seed2: keySeed2}) != want {
		t.Fatalf("folded key seeds (%#x, %#x) do not match New(DigestSeed) (%#x, %#x)",
			uint64(keySeed1), uint64(keySeed2), want.seed1, want.seed2)
	}
}

func TestDigestOfMatchesSum128(t *testing.T) {
	data := []byte("flow-id-13by!")
	lo, hi := New(9).Sum128(data)
	if d := DigestOf(9, data); d.Lo != lo || d.Hi != hi {
		t.Fatal("DigestOf does not expose the Sum128 lanes")
	}
	if KeyDigest(data) != DigestOf(DigestSeed, data) {
		t.Fatal("KeyDigest is not DigestOf(DigestSeed, ·)")
	}
}

func TestMixDigestSeedSensitivity(t *testing.T) {
	// Different mix seeds must decorrelate: over many keys, two mixed
	// outputs collide on a small modulus at ≈ 1/m, and both lanes must
	// influence the result.
	const m, n = 1024, 50000
	coll := 0
	for _, in := range randomInputs(n, 13, 51) {
		d := KeyDigest(in)
		if Reduce(MixDigest(d, 1), m) == Reduce(MixDigest(d, 2), m) {
			coll++
		}
		if MixDigest(d, 7) == MixDigest(Digest{Lo: d.Lo, Hi: d.Hi ^ 1}, 7) {
			t.Fatal("high lane does not affect MixDigest output")
		}
		if MixDigest(d, 7) == MixDigest(Digest{Lo: d.Lo ^ 1, Hi: d.Hi}, 7) {
			t.Fatal("low lane does not affect MixDigest output")
		}
	}
	if rate := float64(coll) / n; rate > 3.0/m {
		t.Fatalf("mixed-output collision rate %.5f, want ≈ %.5f", rate, 1.0/m)
	}
}

func TestFamilyMembersPassBitBalance(t *testing.T) {
	// The paper's Section 6.1 randomness criterion, applied to the
	// digest-mixed member functions (not just the raw digest): every
	// output bit of every family member is 1 with probability ≈ 0.5.
	fam := NewFamily(3, 42)
	inputs := randomInputs(100000, 13, 61)
	for i := 0; i < fam.Len(); i++ {
		fr := BitBalanceOf(func(e []byte) uint64 { return fam.Sum64(i, e) }, inputs)
		if err := MaxBalanceError(fr); err > 0.01 {
			t.Fatalf("family member %d fails bit balance: max error %.4f", i, err)
		}
	}
}

func TestDigestShardBalance(t *testing.T) {
	// The routing lane must spread keys evenly over power-of-two shard
	// counts (the sharded layer routes on Digest.Shard).
	const shards, n = 16, 64000
	counts := make([]int, shards)
	for _, in := range randomInputs(n, 13, 71) {
		counts[KeyDigest(in).Shard(shards-1)]++
	}
	expected := float64(n) / shards
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; mean 15, stddev ≈ 5.5. 15+5σ ≈ 43.
	if chi2 > 43 {
		t.Fatalf("shard chi-square = %.1f, routing too skewed", chi2)
	}
}

func TestFamilyPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFamily(0, ...) should panic")
		}
	}()
	NewFamily(0, 1)
}

func TestSplitMix64Sequence(t *testing.T) {
	s1, s2 := uint64(0), uint64(0)
	a, b := SplitMix64(&s1), SplitMix64(&s2)
	if a != b {
		t.Fatal("SplitMix64 not deterministic")
	}
	c := SplitMix64(&s1)
	if a == c {
		t.Fatal("SplitMix64 sequence repeated immediately")
	}
}

func TestDoublePositionsRangeAndSpread(t *testing.T) {
	d := NewDouble(17)
	const k, m = 8, 4096
	var pos []int
	counts := make([]int, m)
	inputs := randomInputs(20000, 13, 41)
	for _, in := range inputs {
		pos = d.Positions(in, k, m, pos)
		if len(pos) != k {
			t.Fatalf("Positions returned %d, want %d", len(pos), k)
		}
		for _, p := range pos {
			if p < 0 || p >= m {
				t.Fatalf("position %d out of range [0,%d)", p, m)
			}
			counts[p]++
		}
	}
	// Rough uniformity: expected load per slot.
	expected := float64(len(inputs)*k) / m
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 8*math.Sqrt(expected) {
			t.Fatalf("slot %d load %d deviates wildly from %.1f", i, c, expected)
		}
	}
}

func TestDoubleBaseMatchesSum128(t *testing.T) {
	d := NewDouble(3)
	data := []byte("abc")
	h1, h2 := d.Base(data)
	lo, hi := New(3).Sum128(data)
	// NewDouble(seed) wraps New(seed); Base must expose exactly its lanes.
	if h1 != lo || h2 != hi {
		t.Fatal("Double.Base does not expose the underlying Sum128 lanes")
	}
}

func BenchmarkSum64FlowID(b *testing.B) {
	h := New(1)
	data := make([]byte, 13)
	b.SetBytes(13)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Sum64(data)
	}
}

func BenchmarkFamilyPositions8(b *testing.B) {
	// The full pipeline for one key at k = 8: one digest pass plus
	// eight mixes. Compare with BenchmarkSum64FlowID (one pass, one
	// value) to see what the eight derived positions cost on top.
	fam := NewFamily(8, 1)
	data := make([]byte, 13)
	var out []int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := fam.Digest(data)
		out = fam.PositionsFromDigest(d, 8, 1<<20, out)
	}
}

func BenchmarkMixDigest(b *testing.B) {
	d := KeyDigest(make([]byte, 13))
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= MixDigest(d, uint64(i))
	}
	_ = sink
}
