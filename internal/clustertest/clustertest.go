// Package clustertest boots a whole shbfd cluster inside one test
// process: N server instances, each with its own HTTP and ShBP
// listener on loopback and its own temp snapshot path, wired together
// by a uniform cluster map (internal/cluster) — one call up, one call
// down. The multi-node tests of this repo (fault injection,
// anti-entropy, remote≡local equivalence) and the shbench cluster
// fan-out case all run on it, and future cluster PRs (rebalancing,
// map push) get their N-node fixture for free.
//
// Nodes are real servers behind real TCP listeners — the client's
// routing, fan-out, reassembly and error paths are exercised over the
// actual transports, not fakes — but in-process, so a test can also
// reach into a node's *server.Server directly, and [Node.Kill] can
// drop a node abruptly for fault injection.
package clustertest

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"shbf/internal/cluster"
	"shbf/internal/server"
)

// Options configures a test cluster. The zero value means 3 nodes,
// replication 1, a small default geometry, and a fresh temp snapshot
// dir.
type Options struct {
	// Nodes is the node count (default 3).
	Nodes int
	// Replication is the owner count per range, R (default 1). Set it
	// to Nodes for full replication — the layout where every node can
	// answer every key and cluster answers are byte-equivalent to one
	// local filter of the same Spec.
	Replication int
	// Config is the per-node base config; the zero value gets a small
	// deterministic test geometry (every node MUST share geometry and
	// seed — that is what makes replicas union-mergeable). SnapshotPath
	// is overridden per node.
	Config server.Config
	// Dir is the parent for per-node snapshot paths ("" = a fresh temp
	// dir, removed by Stop).
	Dir string
}

// DefaultConfig is the per-node geometry tests get from the zero
// Options: small enough to boot N nodes in milliseconds, deterministic
// seed so remote filters are byte-comparable to local ones.
func DefaultConfig() server.Config {
	return server.Config{
		MembershipBits:   1 << 18,
		MembershipK:      8,
		AssociationBits:  1 << 18,
		AssociationK:     8,
		MultiplicityBits: 1 << 19,
		MultiplicityK:    8,
		MaxCount:         16,
		Shards:           4,
		Seed:             7,
	}
}

// Node is one running daemon of the test cluster.
type Node struct {
	// ID is the node's id in the cluster map ("n1", "n2", ...).
	ID string
	// Srv is the node's in-process server, for direct (non-transport)
	// assertions.
	Srv *server.Server
	// HTTPAddr and ShBPAddr are the node's loopback listener addresses.
	HTTPAddr string
	ShBPAddr string
	// SnapshotPath is the node's private snapshot file.
	SnapshotPath string

	httpSrv  *http.Server
	httpLn   net.Listener
	shbpLn   net.Listener
	cancel   context.CancelFunc
	shbpDone chan struct{}
	killed   bool

	cfg        server.Config // for Restart
	clusterMap *cluster.Map  // set once the cluster map is installed
}

// Kill drops the node abruptly: both listeners close and every open
// ShBP connection is cut, mid-frame if one is in flight — the fault
// the cluster client must answer with per-node errors rather than
// corrupt reassembly. Idempotent.
func (n *Node) Kill() {
	if n.killed {
		return
	}
	n.killed = true
	n.cancel()        // closes the ShBP listener and its connections
	n.httpSrv.Close() // closes the HTTP listener and its connections
	<-n.shbpDone
}

// Restart brings a killed node back on its original addresses with a
// fresh server built from the node's config: state comes back only
// through the snapshot file, if the test wrote one — exactly a daemon
// restart. The cluster map is re-installed, so the revived node serves
// it again. No-op on a live node.
//
// Unsynced writes are gone after Kill/Restart (Kill is abrupt); the
// chaos tests re-converge replicas with anti-entropy merges, which is
// the production answer too (OPERATIONS.md §"Fault tolerance").
func (n *Node) Restart() error {
	if !n.killed {
		return nil
	}
	srv, err := server.New(n.cfg)
	if err != nil {
		return fmt.Errorf("node %s: restart: %w", n.ID, err)
	}
	if n.clusterMap != nil {
		if err := srv.SetClusterMap(n.clusterMap, n.ID); err != nil {
			return fmt.Errorf("node %s: restart: %w", n.ID, err)
		}
	}
	// Rebind the exact addresses the cluster map (and every client
	// holding it) routes to. The old listeners are fully closed by
	// Kill, so the ports are free — a race with another process
	// grabbing a loopback port in the gap is possible but vanishingly
	// rare, and surfaces as a plain error here.
	httpLn, err := net.Listen("tcp", n.HTTPAddr)
	if err != nil {
		return fmt.Errorf("node %s: restart: http listener: %w", n.ID, err)
	}
	shbpLn, err := net.Listen("tcp", n.ShBPAddr)
	if err != nil {
		httpLn.Close()
		return fmt.Errorf("node %s: restart: shbp listener: %w", n.ID, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n.Srv = srv
	n.httpSrv = &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	n.httpLn, n.shbpLn = httpLn, shbpLn
	n.cancel = cancel
	n.shbpDone = make(chan struct{})
	n.killed = false
	shbpDone := n.shbpDone
	go func() {
		defer close(shbpDone)
		if err := srv.ServeShBP(ctx, shbpLn); err != nil && ctx.Err() == nil {
			_ = err
		}
	}()
	httpSrv := n.httpSrv
	go func() {
		if err := httpSrv.Serve(httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			_ = err
		}
	}()
	return nil
}

// Cluster is the running node set plus the map that ties it together.
type Cluster struct {
	// Map is the cluster map every node serves (uniform ranges, node i
	// primary for range i).
	Map *cluster.Map
	// Nodes holds the running nodes, index i = map node "n<i+1>".
	Nodes []*Node

	dir    string
	ownDir bool
}

// Start boots a cluster for a test and registers teardown with
// t.Cleanup. See [StartNodes] for the non-testing form.
func Start(t testing.TB, opts Options) *Cluster {
	t.Helper()
	c, err := StartNodes(opts)
	if err != nil {
		t.Fatalf("clustertest: %v", err)
	}
	t.Cleanup(c.Stop)
	return c
}

// StartNodes boots a cluster and returns it, for callers without a
// testing.TB (shbench's cluster fan-out case). Call Stop when done.
func StartNodes(opts Options) (*Cluster, error) {
	if opts.Nodes == 0 {
		opts.Nodes = 3
	}
	if opts.Replication == 0 {
		opts.Replication = 1
	}
	if opts.Config == (server.Config{}) {
		opts.Config = DefaultConfig()
	}
	c := &Cluster{dir: opts.Dir}
	if c.dir == "" {
		dir, err := os.MkdirTemp("", "clustertest-*")
		if err != nil {
			return nil, err
		}
		c.dir, c.ownDir = dir, true
	}
	for i := 0; i < opts.Nodes; i++ {
		n, err := startNode(fmt.Sprintf("n%d", i+1), opts.Config, c.dir)
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.Nodes = append(c.Nodes, n)
	}
	entries := make([]cluster.Node, len(c.Nodes))
	for i, n := range c.Nodes {
		entries[i] = cluster.Node{ID: n.ID, Addr: n.ShBPAddr, HTTPAddr: n.HTTPAddr}
	}
	m, err := cluster.Uniform(1, entries, opts.Replication)
	if err != nil {
		c.Stop()
		return nil, err
	}
	c.Map = m
	for _, n := range c.Nodes {
		if err := n.Srv.SetClusterMap(m, n.ID); err != nil {
			c.Stop()
			return nil, err
		}
		n.clusterMap = m
	}
	return c, nil
}

// startNode builds one server and brings up its two listeners.
func startNode(id string, cfg server.Config, dir string) (*Node, error) {
	cfg.SnapshotPath = filepath.Join(dir, id+".shbf")
	srv, err := server.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("node %s: %w", id, err)
	}
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("node %s: http listener: %w", id, err)
	}
	shbpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		httpLn.Close()
		return nil, fmt.Errorf("node %s: shbp listener: %w", id, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		ID:           id,
		cfg:          cfg,
		Srv:          srv,
		HTTPAddr:     httpLn.Addr().String(),
		ShBPAddr:     shbpLn.Addr().String(),
		SnapshotPath: cfg.SnapshotPath,
		httpSrv:      &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second},
		httpLn:       httpLn,
		shbpLn:       shbpLn,
		cancel:       cancel,
		shbpDone:     make(chan struct{}),
	}
	go func() {
		defer close(n.shbpDone)
		if err := srv.ServeShBP(ctx, shbpLn); err != nil && ctx.Err() == nil {
			// Listener failures after Kill are expected; anything else
			// would fail the test through its own assertions.
			_ = err
		}
	}()
	// Serve via a local, not n.httpSrv: Restart swaps the field, and
	// this goroutine may still be starting up when it does.
	httpSrv := n.httpSrv
	go func() {
		if err := httpSrv.Serve(httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			_ = err
		}
	}()
	return n, nil
}

// CreateNamespace creates a tenant on every live node, as a cluster
// deployment would before routing batches at it.
func (c *Cluster) CreateNamespace(cfg server.NamespaceConfig) error {
	for _, n := range c.Nodes {
		if n.killed {
			continue
		}
		if err := n.Srv.CreateNamespace(cfg); err != nil {
			return fmt.Errorf("node %s: %w", n.ID, err)
		}
	}
	return nil
}

// SeedAddr returns a live node's ShBP address — the one-address
// bootstrap a client.DialCluster starts from.
func (c *Cluster) SeedAddr() string {
	for _, n := range c.Nodes {
		if !n.killed {
			return n.ShBPAddr
		}
	}
	return ""
}

// Stop kills every node and removes the temp dir (when Stop created
// it). Idempotent; registered via t.Cleanup by Start.
func (c *Cluster) Stop() {
	for _, n := range c.Nodes {
		n.Kill()
	}
	if c.ownDir && c.dir != "" {
		os.RemoveAll(c.dir)
		c.dir = ""
	}
}
