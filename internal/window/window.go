// Package window gives sliding-window semantics to the core ShBF
// kinds: a generation ring of G identically-specified filters in which
// writes go to the head generation, queries combine all G generations
// (membership ORs, multiplicity sums, association unions candidate
// regions), and a rotation retires the oldest generation and recycles
// it as a cleared head. After G rotations nothing written before the
// first rotation is still answerable — the filter "forgets", which is
// what streaming deployments of the paper's use cases (per-flow
// measurement, membership over network traffic) need: "was this key
// seen in the last N minutes", not "ever".
//
// With a rotation every tick T, a key inserted at some instant stays
// queryable for between (G−1)·T and G·T — the usual generation-ring
// slack of one tick. Steady-state resources are bounded by the ring:
// memory is G × the per-generation Spec, and the query-side false
// positive rate is bounded by 1 − (1−f)^G where f is one generation's
// rate at its tick-worth of load (analytic.FPRWindow). Unlike an
// unbounded append-only filter, neither grows with stream length.
//
// Three windows cover the framework's query kinds:
//
//   - [Membership] rings ShBF_M (core.Membership): Add/Contains with
//     OR-of-generations queries.
//   - [Multiplicity] rings CShBF_X (core.CountingMultiplicity):
//     Insert/Count with sum-of-generations counts, which never
//     underestimate a key's in-window multiplicity.
//   - [Association] rings CShBF_A (core.CountingAssociation):
//     InsertS1/InsertS2/Query with union-of-candidate-region answers.
//
// All three ride the one-pass digest pipeline: batch paths digest each
// key once and fan the cached digest out across the ring, so a window
// query costs one key scan plus G probe sets — no per-generation
// re-hashing — and the hot paths do not allocate in steady state.
// Rotation policy is explicit: Rotate retires the tail now, RotateIfDue
// rotates when the configured tick has elapsed. The query and write
// paths never read the clock, so windows stay deterministic and
// benchmarkable; a serving loop (cmd/shbfd's -tick) owns the cadence.
//
// Like the core kinds they ring, windows are not safe for concurrent
// mutation. internal/sharded composes per-shard windows into
// lock-striped concurrent ones that rotate shard by shard without
// blocking queries on other shards.
package window

import (
	"fmt"
	"time"

	"shbf/internal/core"
	"shbf/internal/hashing"
)

// maxGenerations bounds ring construction and decoding; a window deep
// enough to want more generations should widen its tick instead.
const maxGenerations = 1 << 12

// TickPolicy is the wall-clock rotation policy shared by the
// monolithic rings (Rotator) and the sharded compositions: a
// configured period and the time of the last due rotation. The zero
// period disables the clock entirely.
type TickPolicy struct {
	// Tick is the rotation period; zero means rotation is explicit.
	Tick time.Duration
	last time.Time
}

// Due reports whether a rotation is due at now: the first call arms
// the clock, later calls answer true once per elapsed Tick and reset
// it. The clock advances even if the caller's subsequent rotation
// fails (it retries on the next tick, not immediately).
func (p *TickPolicy) Due(now time.Time) bool {
	if p.Tick == 0 {
		return false
	}
	if p.last.IsZero() {
		p.last = now
		return false
	}
	if now.Sub(p.last) < p.Tick {
		return false
	}
	p.last = now
	return true
}

// Rotator is the generic generation ring under every window kind: G
// filters of identical Spec, a head index naming the write generation,
// and the rotation bookkeeping (epoch, tick policy). The typed windows
// own one Rotator each and add the kind-specific query fan-out.
type Rotator[F any] struct {
	gens  []F
	head  int
	epoch uint64
	clock TickPolicy

	// recycle clears or rebuilds a retired tail generation so it can
	// serve as the new head. Kinds with an in-place Reset recycle with
	// zero garbage; the counting kinds rebuild from spec.
	recycle func(F) (F, error)
}

// NewRotator builds a ring of g generations, each constructed by
// fresh; recycle turns a retired generation into an empty one at
// rotation (clearing in place where the kind supports it, rebuilding
// otherwise). tick is the wall-clock rotation period honored by
// RotateIfDue; zero leaves rotation fully explicit.
func NewRotator[F any](g int, tick time.Duration, fresh func() (F, error), recycle func(F) (F, error)) (*Rotator[F], error) {
	if g < 2 || g > maxGenerations {
		return nil, fmt.Errorf("window: generation count %d out of range [2, %d]", g, maxGenerations)
	}
	if tick < 0 {
		return nil, fmt.Errorf("window: negative tick %s", tick)
	}
	r := &Rotator[F]{gens: make([]F, g), clock: TickPolicy{Tick: tick}, recycle: recycle}
	for i := range r.gens {
		f, err := fresh()
		if err != nil {
			return nil, fmt.Errorf("window: building generation %d: %w", i, err)
		}
		r.gens[i] = f
	}
	return r, nil
}

// Generations returns the ring length G.
func (r *Rotator[F]) Generations() int { return len(r.gens) }

// Epoch returns the number of completed rotations.
func (r *Rotator[F]) Epoch() uint64 { return r.epoch }

// Tick returns the configured wall-clock rotation period (zero when
// rotation is explicit-only).
func (r *Rotator[F]) Tick() time.Duration { return r.clock.Tick }

// Head returns the write generation.
func (r *Rotator[F]) Head() F { return r.gens[r.head] }

// At returns the generation age rotations old: At(0) is the head,
// At(Generations()−1) the next to be retired.
func (r *Rotator[F]) At(age int) F { return r.gens[r.index(age)] }

// index maps an age (0 = head) to a ring position.
func (r *Rotator[F]) index(age int) int {
	g := len(r.gens)
	return ((r.head-age)%g + g) % g
}

// Rotate retires the oldest generation, recycles it as the cleared new
// head, and advances the epoch. Keys whose only copy lived in the
// retired generation stop being answerable — that is the point.
func (r *Rotator[F]) Rotate() error {
	tail := (r.head + 1) % len(r.gens) // the ring position after head is the oldest
	fresh, err := r.recycle(r.gens[tail])
	if err != nil {
		return fmt.Errorf("window: recycling retired generation: %w", err)
	}
	r.gens[tail] = fresh
	r.head = tail
	r.epoch++
	return nil
}

// RotateIfDue rotates once when at least one tick has elapsed since
// the last due rotation (or since the first call, which arms the
// clock), reporting whether it rotated. Callers own the cadence — the
// query paths never read the clock — so pass time.Now() from a serving
// loop, or synthetic times from tests.
func (r *Rotator[F]) RotateIfDue(now time.Time) (bool, error) {
	if !r.clock.Due(now) {
		return false, nil
	}
	if err := r.Rotate(); err != nil {
		return false, err
	}
	return true, nil
}

// Info is a window's rotation snapshot, surfaced by the daemon's
// /v1/stats and the root package's Windowed interface.
type Info struct {
	// Generations is the ring length G.
	Generations int
	// Epoch is the number of completed rotations.
	Epoch uint64
	// Tick is the configured rotation period (0 = explicit rotation).
	Tick time.Duration
	// PerGeneration lists each generation's occupancy, newest (the
	// write head) to oldest (next to be retired).
	PerGeneration []GenInfo
}

// GenInfo is one generation's occupancy.
type GenInfo struct {
	// N is the generation's stored-element count (per-kind semantics
	// as core.Stats.N; −1 where no exact set is tracked).
	N int
	// FillRatio is the fraction of set bits in the generation's
	// query-side array.
	FillRatio float64
}

// info assembles the ring-level Info; the typed windows fill
// PerGeneration from their generation accessors.
func (r *Rotator[F]) info(gen func(F) GenInfo) Info {
	in := Info{
		Generations:   len(r.gens),
		Epoch:         r.epoch,
		Tick:          r.clock.Tick,
		PerGeneration: make([]GenInfo, len(r.gens)),
	}
	for age := range r.gens {
		in.PerGeneration[age] = gen(r.gens[r.index(age)])
	}
	return in
}

// digestAll fills scratch with the keys' one-pass digests,
// reallocating only on growth — the shared phase-one of every window
// batch path: digest once, fan out across the ring with the cached
// digests.
func digestAll(scratch *[]hashing.Digest, keys [][]byte) []hashing.Digest {
	ds := *scratch
	if cap(ds) < len(keys) {
		ds = make([]hashing.Digest, len(keys))
	}
	ds = ds[:len(keys)]
	for i, e := range keys {
		ds[i] = hashing.KeyDigest(e)
	}
	*scratch = ds
	return ds
}

// resizeSlice resizes dst to n, reusing its backing array when
// possible (the dst convention shared with internal/core's batch
// paths).
func resizeSlice[T any](dst []T, n int) []T {
	if cap(dst) < n {
		return make([]T, n)
	}
	return dst[:n]
}

// windowSpec lifts one generation's Spec to the enclosing window's:
// same geometry and seed, window kind, ring length and tick attached.
func windowSpec(inner core.Spec, kind core.Kind, g int, tick time.Duration) core.Spec {
	s := inner
	s.Kind = kind
	s.Generations = g
	s.Tick = tick
	return s
}

// checkSpec validates the window-level fields common to every typed
// constructor.
func checkSpec(spec core.Spec, want core.Kind) error {
	if spec.Kind != want {
		return fmt.Errorf("window: spec kind %s, want %s", spec.Kind, want)
	}
	return spec.Validate()
}
