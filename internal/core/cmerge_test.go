package core

import (
	"fmt"
	"testing"
)

func newMergeFilter(t *testing.T, opts ...Option) *CountingMultiplicity {
	t.Helper()
	f, err := NewCountingMultiplicity(1<<12, 4, 16, append([]Option{WithSeed(7)}, opts...)...)
	if err != nil {
		t.Fatalf("NewCountingMultiplicity: %v", err)
	}
	return f
}

func insertTimes(t *testing.T, f *CountingMultiplicity, key []byte, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := f.Insert(key); err != nil {
			t.Fatalf("insert %q ×%d: %v", key, n, err)
		}
	}
}

// TestCountingMergeNeverUnderestimates is the merge's core contract:
// for every element of either side, the merged filter reports at least
// the larger of the two sides' multiplicities.
func TestCountingMergeNeverUnderestimates(t *testing.T) {
	a, b := newMergeFilter(t), newMergeFilter(t)
	counts := map[string][2]int{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%03d", i)
		ca, cb := i%5, (i*7)%9
		insertTimes(t, a, []byte(key), ca)
		insertTimes(t, b, []byte(key), cb)
		counts[key] = [2]int{ca, cb}
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	for key, c := range counts {
		want := c[0]
		if c[1] > want {
			want = c[1]
		}
		if got := a.Count([]byte(key)); got < want {
			t.Fatalf("merged count(%q) = %d, want ≥ max(%d, %d)", key, got, c[0], c[1])
		}
		if got := a.ExactCount([]byte(key)); got != want {
			t.Fatalf("merged exact count(%q) = %d, want %d", key, got, want)
		}
	}
}

// TestCountingMergeIdempotentAtQueryLevel re-merges the same source
// and checks every reported count is unchanged — the property UDP
// duplicate delivery of an envelope flush rides on.
func TestCountingMergeIdempotentAtQueryLevel(t *testing.T) {
	a, b := newMergeFilter(t), newMergeFilter(t)
	keys := make([][]byte, 50)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("dup-%02d", i))
		insertTimes(t, b, keys[i], 1+i%7)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("first merge: %v", err)
	}
	first := make([]int, len(keys))
	for i, k := range keys {
		first[i] = a.Count(k)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("second merge: %v", err)
	}
	for i, k := range keys {
		if got := a.Count(k); got != first[i] {
			t.Fatalf("count(%q) changed %d → %d on re-merge", k, first[i], got)
		}
		if got := a.ExactCount(k); got != 1+i%7 {
			t.Fatalf("exact count(%q) = %d after re-merge, want %d", k, got, 1+i%7)
		}
	}
	// Self-merge is the identity.
	if err := a.Merge(a); err != nil {
		t.Fatalf("self-merge: %v", err)
	}
	for i, k := range keys {
		if got := a.Count(k); got != first[i] {
			t.Fatalf("count(%q) changed %d → %d on self-merge", k, first[i], got)
		}
	}
}

// TestCountingMergeRefusesIncompatible checks geometry, seed and mode
// mismatches are refused with the destination unchanged.
func TestCountingMergeRefusesIncompatible(t *testing.T) {
	base := newMergeFilter(t)
	insertTimes(t, base, []byte("probe"), 3)
	cases := map[string]*CountingMultiplicity{}
	if f, err := NewCountingMultiplicity(1<<11, 4, 16, WithSeed(7)); err == nil {
		cases["different m"] = f
	}
	if f, err := NewCountingMultiplicity(1<<12, 6, 16, WithSeed(7)); err == nil {
		cases["different k"] = f
	}
	if f, err := NewCountingMultiplicity(1<<12, 4, 8, WithSeed(7)); err == nil {
		cases["different c"] = f
	}
	if f, err := NewCountingMultiplicity(1<<12, 4, 16, WithSeed(8)); err == nil {
		cases["different seed"] = f
	}
	if f, err := NewCountingMultiplicity(1<<12, 4, 16, WithSeed(7), WithUnsafeUpdates()); err == nil {
		cases["unsafe mode"] = f
	}
	if f, err := NewCountingMultiplicity(1<<12, 4, 16, WithSeed(7), WithCounterWidth(8)); err == nil {
		cases["counter width"] = f
	}
	for name, other := range cases {
		if err := base.Merge(other); err == nil {
			t.Fatalf("%s: merge accepted", name)
		}
		if got := base.Count([]byte("probe")); got != 3 {
			t.Fatalf("%s: refused merge changed count to %d", name, got)
		}
	}
}

// TestCountingMergeSaturatedCountersStaySafe drives counters to
// saturation through merges and checks queries still never
// underestimate (clamped counters delay bit clearing — the safe
// side — rather than clearing early).
func TestCountingMergeSaturatedCountersStaySafe(t *testing.T) {
	// 2-bit counters saturate at 3: three merges of the same single-key
	// filter clamp them.
	mk := func() *CountingMultiplicity {
		f, err := NewCountingMultiplicity(1<<10, 4, 8, WithSeed(3), WithCounterWidth(2))
		if err != nil {
			t.Fatalf("NewCountingMultiplicity: %v", err)
		}
		return f
	}
	dst, src := mk(), mk()
	insertTimes(t, src, []byte("hot"), 2)
	for i := 0; i < 4; i++ {
		if err := dst.Merge(src); err != nil {
			t.Fatalf("merge %d: %v", i, err)
		}
		if got := dst.Count([]byte("hot")); got < 2 {
			t.Fatalf("after %d merges count = %d, underestimates 2", i+1, got)
		}
	}
}

// TestCountingMergeUnsafeMode merges two table-less (Section 5.3.1)
// filters: bits and counters alone must still never underestimate.
func TestCountingMergeUnsafeMode(t *testing.T) {
	a := newMergeFilter(t, WithUnsafeUpdates())
	b := newMergeFilter(t, WithUnsafeUpdates())
	insertTimes(t, a, []byte("left"), 4)
	insertTimes(t, b, []byte("right"), 6)
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if got := a.Count([]byte("left")); got < 4 {
		t.Fatalf("count(left) = %d, want ≥ 4", got)
	}
	if got := a.Count([]byte("right")); got < 6 {
		t.Fatalf("count(right) = %d, want ≥ 6", got)
	}
}
