package window

import (
	"fmt"
	"testing"
	"time"

	"shbf/internal/core"
)

func memSpec(g int) core.Spec {
	return core.Spec{Kind: core.KindWindowMembership, M: 1 << 14, K: 8, Seed: 7, Generations: g}
}

func multSpec(g int) core.Spec {
	return core.Spec{Kind: core.KindWindowMultiplicity, M: 1 << 15, K: 4, C: 57, Seed: 7,
		Generations: g, CounterWidth: 8}
}

func assocSpec(g int) core.Spec {
	return core.Spec{Kind: core.KindWindowAssociation, M: 1 << 14, K: 4, Seed: 7, Generations: g}
}

func keysOf(prefix string, n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%s-%06d", prefix, i))
	}
	return keys
}

// TestMembershipExpiry pins the window contract: a key stays
// answerable for G−1 rotations after its insert tick and is gone after
// G.
func TestMembershipExpiry(t *testing.T) {
	const g = 4
	w, err := NewMembership(memSpec(g))
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("flow-under-test")
	w.Add(key)
	for r := 0; r < g-1; r++ {
		if !w.Contains(key) {
			t.Fatalf("key lost after %d rotations, want it live through %d", r, g-1)
		}
		if err := w.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	if !w.Contains(key) {
		t.Fatalf("key lost after %d rotations, want it live until the %dth", g-1, g)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if w.Contains(key) {
		t.Fatalf("key still answerable after %d rotations", g)
	}
	if w.Epoch() != g {
		t.Fatalf("epoch %d after %d rotations", w.Epoch(), g)
	}
}

// TestMembershipRefreshOutlivesRotation: re-adding a key each tick
// keeps it alive indefinitely — the streaming "seen recently" use.
func TestMembershipRefreshOutlivesRotation(t *testing.T) {
	w, err := NewMembership(memSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("live-flow")
	for tick := 0; tick < 10; tick++ {
		w.Add(key)
		if err := w.Rotate(); err != nil {
			t.Fatal(err)
		}
		if !w.Contains(key) {
			t.Fatalf("refreshed key lost at tick %d", tick)
		}
	}
}

// TestMembershipBatchEqualsScalarAcrossRotations: ContainsAll answers
// exactly as the scalar loop, including for keys straddling rotation
// boundaries.
func TestMembershipBatchEqualsScalarAcrossRotations(t *testing.T) {
	const g = 3
	w, err := NewMembership(memSpec(g))
	if err != nil {
		t.Fatal(err)
	}
	var probes [][]byte
	for tick := 0; tick < 2*g; tick++ {
		batch := keysOf(fmt.Sprintf("tick%d", tick), 200)
		if err := w.AddAll(batch); err != nil {
			t.Fatal(err)
		}
		probes = append(probes, batch[:50]...)
		if err := w.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	probes = append(probes, keysOf("never", 200)...)
	dst := w.ContainsAll(nil, probes)
	if len(dst) != len(probes) {
		t.Fatalf("ContainsAll returned %d answers for %d keys", len(dst), len(probes))
	}
	for i, e := range probes {
		if dst[i] != w.Contains(e) {
			t.Fatalf("key %d: batch %v, scalar %v", i, dst[i], w.Contains(e))
		}
	}
}

// TestMembershipRecycleClearsInPlace: rotation reuses the retired
// generation's array rather than reallocating.
func TestMembershipRecycleClearsInPlace(t *testing.T) {
	w, err := NewMembership(memSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	retired := w.rot.At(1)
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if w.rot.Head() != retired {
		t.Fatal("membership rotation did not recycle the retired generation in place")
	}
	if w.rot.Head().N() != 0 {
		t.Fatal("recycled head is not empty")
	}
}

// TestRotateIfDue: the wall-clock policy arms on first call, rotates
// once per elapsed tick, and is inert at tick 0.
func TestRotateIfDue(t *testing.T) {
	spec := memSpec(3)
	spec.Tick = time.Minute
	w, err := NewMembership(spec)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1700000000, 0)
	if due, _ := w.RotateIfDue(base); due {
		t.Fatal("first call must arm the clock, not rotate")
	}
	if due, _ := w.RotateIfDue(base.Add(30 * time.Second)); due {
		t.Fatal("rotated before a full tick elapsed")
	}
	if due, _ := w.RotateIfDue(base.Add(61 * time.Second)); !due {
		t.Fatal("did not rotate after a full tick")
	}
	if w.Epoch() != 1 {
		t.Fatalf("epoch %d, want 1", w.Epoch())
	}

	fixed, err := NewMembership(memSpec(3)) // Tick 0: explicit rotation only
	if err != nil {
		t.Fatal(err)
	}
	if due, _ := fixed.RotateIfDue(base.Add(time.Hour)); due {
		t.Fatal("tick-0 window rotated on the clock")
	}
}

// TestMultiplicityWindowCounts: counts sum across generations, expire
// with their generation, and never underestimate.
func TestMultiplicityWindowCounts(t *testing.T) {
	const g = 3
	w, err := NewMultiplicity(multSpec(g))
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("elephant-flow")
	// 2 packets per tick for g ticks: in-window count stays 2g−2..2g
	// as old ticks roll off.
	for tick := 0; tick < g; tick++ {
		for p := 0; p < 2; p++ {
			if err := w.Insert(key); err != nil {
				t.Fatal(err)
			}
		}
		if got, want := w.Count(key), 2*(tick+1); got < want {
			t.Fatalf("tick %d: count %d underestimates true %d", tick, got, want)
		}
		if err := w.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	// The stream stops. The loop above already rotated g times, so the
	// oldest tick's packets are gone: g−1 ticks of 2 packets remain,
	// and each further rotation forgets one more tick.
	for tick := 0; tick < g; tick++ {
		want := 2 * max(g-1-tick, 0)
		if got := w.Count(key); got < want {
			t.Fatalf("drain tick %d: count %d underestimates live %d", tick, got, want)
		}
		if err := w.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Count(key); got != 0 {
		t.Fatalf("count %d after full expiry, want 0", got)
	}

	// Delete undoes an in-tick insert only.
	if err := w.Insert(key); err != nil {
		t.Fatal(err)
	}
	if err := w.Delete(key); err != nil {
		t.Fatal(err)
	}
	if got := w.Count(key); got != 0 {
		t.Fatalf("count %d after insert+delete, want 0", got)
	}
	if err := w.Delete(key); err == nil {
		t.Fatal("deleting a key absent from the head generation must fail")
	}
}

// TestMultiplicityBatchEqualsScalar across rotations.
func TestMultiplicityBatchEqualsScalar(t *testing.T) {
	w, err := NewMultiplicity(multSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	keys := keysOf("flow", 300)
	for tick := 0; tick < 4; tick++ {
		if err := w.AddAll(keys[:200]); err != nil {
			t.Fatal(err)
		}
		if err := w.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	dst := w.CountAll(nil, keys)
	for i, e := range keys {
		if dst[i] != w.Count(e) {
			t.Fatalf("key %d: batch %d, scalar %d", i, dst[i], w.Count(e))
		}
	}
}

// TestAssociationWindow: region answers union across generations and
// expire by rotation.
func TestAssociationWindow(t *testing.T) {
	const g = 3
	w, err := NewAssociation(assocSpec(g))
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("migrating-key")
	if err := w.InsertS1(key); err != nil {
		t.Fatal(err)
	}
	r := w.Query(key)
	if !r.InS1() || r == core.RegionNone {
		t.Fatalf("fresh S1 insert answers %s", r)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	// The key moves to S2 in a later tick: the window's union answer
	// must include both candidate memberships.
	if err := w.InsertS2(key); err != nil {
		t.Fatal(err)
	}
	r = w.Query(key)
	if !r.Contains(core.RegionS1Only) || !r.Contains(core.RegionS2Only) {
		t.Fatalf("straddling key answers %s, want S1 and S2 candidates", r)
	}
	// After g more rotations with no refresh, everything expires.
	for i := 0; i < g; i++ {
		if err := w.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Query(key); got != core.RegionNone {
		t.Fatalf("expired key answers %s, want none", got)
	}

	// Batch ≡ scalar.
	keys := keysOf("ak", 200)
	for i, e := range keys[:120] {
		var err error
		if i%2 == 0 {
			err = w.InsertS1(e)
		} else {
			err = w.InsertS2(e)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	dst := w.QueryAll(nil, keys)
	for i, e := range keys {
		if dst[i] != w.Query(e) {
			t.Fatalf("key %d: batch %s, scalar %s", i, dst[i], w.Query(e))
		}
	}
}

// TestSpecRoundTrip: Spec() reconstructs an equivalent empty window
// for every typed kind.
func TestSpecRoundTrip(t *testing.T) {
	m, err := NewMembership(memSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	want := memSpec(4)
	want.MaxOffset = core.DefaultMaxOffset // Spec() reports the resolved default
	if got := m.Spec(); got != want {
		t.Fatalf("membership spec %+v, want %+v", got, want)
	}
	x, err := NewMultiplicity(multSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Spec(); got != multSpec(2) {
		t.Fatalf("multiplicity spec %+v, want %+v", got, multSpec(2))
	}
	a, err := NewAssociation(assocSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	// CShBF_A reports its resolved counter width; normalize and
	// compare the rest.
	got := a.Spec()
	if got.CounterWidth == 0 {
		t.Fatal("association spec lost the resolved counter width")
	}
	got.CounterWidth = 0
	wantA := assocSpec(5)
	wantA.MaxOffset = core.DefaultMaxOffset
	if got != wantA {
		t.Fatalf("association spec %+v, want %+v", got, wantA)
	}
}

// TestConstructionRejectsBadSpecs: wrong kind, missing generations,
// negative tick.
func TestConstructionRejectsBadSpecs(t *testing.T) {
	if _, err := NewMembership(core.Spec{Kind: core.KindMembership, M: 1024, K: 4}); err == nil {
		t.Fatal("accepted a non-window kind")
	}
	s := memSpec(1)
	if _, err := NewMembership(s); err == nil {
		t.Fatal("accepted Generations = 1")
	}
	s = memSpec(4)
	s.Tick = -time.Second
	if _, err := NewMembership(s); err == nil {
		t.Fatal("accepted a negative tick")
	}
	if _, err := NewMultiplicity(assocSpec(3)); err == nil {
		t.Fatal("multiplicity constructor accepted an association spec")
	}
}

// TestWindowInfo: Info reports the ring newest-to-oldest with the head
// first.
func TestWindowInfo(t *testing.T) {
	spec := memSpec(3)
	spec.Tick = 2 * time.Second
	w, err := NewMembership(spec)
	if err != nil {
		t.Fatal(err)
	}
	w.AddAll(keysOf("a", 100))
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	w.AddAll(keysOf("b", 10))
	in := w.Window()
	if in.Generations != 3 || in.Epoch != 1 || in.Tick != 2*time.Second {
		t.Fatalf("info %+v", in)
	}
	if len(in.PerGeneration) != 3 {
		t.Fatalf("per-generation entries %d", len(in.PerGeneration))
	}
	if in.PerGeneration[0].N != 10 || in.PerGeneration[1].N != 100 || in.PerGeneration[2].N != 0 {
		t.Fatalf("per-generation Ns %+v, want head-first [10 100 0]", in.PerGeneration)
	}
}
