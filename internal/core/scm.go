package core

import (
	"fmt"

	"shbf/internal/counters"
	"shbf/internal/hashing"
	"shbf/internal/memmodel"
)

// SCMSketch is the Shifting Count-Min sketch of paper Section 5.5: the
// shifting framework applied to the count-min sketch [9]. Where a CM
// sketch with d rows computes d hash functions and touches d counters
// per operation, the SCM sketch keeps d/2 rows and, per row, updates the
// two counters v_i[h_i(e)] and v_i[h_i(e)+o(e)] — halving hash
// computations and memory accesses, since both counters of a row fit in
// one access window when o(e) ≤ (w−7)/z for z-bit counters.
//
// Rows are allocated with r base slots plus maxOffset slack so shifted
// indices never wrap (the paper draws each row with 2r counters for the
// same reason).
type SCMSketch struct {
	rows      []*counters.Array
	d         int             // logical depth (must be even); d/2 physical rows
	r         int             // base slots per row
	maxOffset int             // offset range bound (w−7)/z
	fam       *hashing.Family // d/2 row hashers + 1 offset hasher
	seed      uint64
}

// NewSCMSketch returns an SCM sketch with logical depth d (an even
// number, matching a CM sketch with d rows) and r base counters per
// row. Counter width defaults to 32 bits (override with
// WithCounterWidth); the offset bound is derived as max(2, (w−7)/width)
// so a row's counter pair is one memory access, per Section 5.5.
func NewSCMSketch(d, r int, opts ...Option) (*SCMSketch, error) {
	cfg, err := buildConfig(KindSCMSketch, opts)
	if err != nil {
		return nil, err
	}
	if d < 2 || d%2 != 0 {
		return nil, fmt.Errorf("core: depth d = %d must be even and ≥ 2", d)
	}
	if r < 1 {
		return nil, fmt.Errorf("core: row size r = %d must be ≥ 1", r)
	}
	maxOffset := (WordBits - 7) / int(cfg.counterWidth)
	if maxOffset < 2 {
		maxOffset = 2
	}
	s := &SCMSketch{
		rows:      make([]*counters.Array, d/2),
		d:         d,
		r:         r,
		maxOffset: maxOffset,
		fam:       hashing.NewFamily(d/2+1, cfg.seed),
		seed:      cfg.seed,
	}
	for i := range s.rows {
		s.rows[i] = counters.New(r+maxOffset, cfg.counterWidth)
		s.rows[i].SetCounter(cfg.counter)
	}
	return s, nil
}

// D returns the logical depth (the number of counters examined per
// query, matching a CM sketch's d).
func (s *SCMSketch) D() int { return s.d }

// R returns the base row width.
func (s *SCMSketch) R() int { return s.r }

// MaxOffset returns the derived offset bound.
func (s *SCMSketch) MaxOffset() int { return s.maxOffset }

// HashOpsPerOp returns d/2 + 1, versus the CM sketch's d.
func (s *SCMSketch) HashOpsPerOp() int { return s.d/2 + 1 }

// SetUpdateCounter attaches a single access counter to all rows.
func (s *SCMSketch) SetUpdateCounter(mc *memmodel.Counter) {
	for _, row := range s.rows {
		row.SetCounter(mc)
	}
}

// offset computes o(e) = h_{d/2+1}(e) % (maxOffset−1) + 1 from e's
// digest.
func (s *SCMSketch) offset(d hashing.Digest) int {
	return hashing.Reduce(s.fam.FromDigest(s.d/2, d), s.maxOffset-1) + 1
}

// Insert increments e's d counters (two per physical row): one digest
// pass, d/2+1 mixes.
func (s *SCMSketch) Insert(e []byte) {
	d := s.fam.Digest(e)
	o := s.offset(d)
	for i, row := range s.rows {
		base := s.fam.ModFromDigest(i, d, s.r)
		row.Inc(base)
		row.Inc(base + o)
	}
}

// Count returns the count-min estimate for e: the minimum over the d
// counters. Like the CM sketch, the estimate never underestimates.
func (s *SCMSketch) Count(e []byte) uint64 {
	d := s.fam.Digest(e)
	o := s.offset(d)
	min := ^uint64(0)
	for i, row := range s.rows {
		base := s.fam.ModFromDigest(i, d, s.r)
		if v := row.Get(base); v < min {
			min = v
		}
		if v := row.Get(base + o); v < min {
			min = v
		}
	}
	return min
}

// SizeBytes returns the total counter footprint.
func (s *SCMSketch) SizeBytes() int {
	total := 0
	for _, row := range s.rows {
		total += row.SizeBytes()
	}
	return total
}
