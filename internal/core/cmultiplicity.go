package core

import (
	"fmt"
	"math/bits"

	"shbf/internal/bitvec"
	"shbf/internal/counters"
	"shbf/internal/hashing"
	"shbf/internal/hashtable"
	"shbf/internal/memmodel"
)

// CountingMultiplicity is CShBF_X (paper Section 5.3): an updatable
// ShBF_X. It maintains the query-side bit array B, a counter array C of
// the same length, and — in the default no-false-negative mode of
// Section 5.3.2 (Figure 5) — an off-chip hash table holding each
// element's exact count.
//
// An insert of e moves its encoding from multiplicity z to z+1: the k
// counters at h_i(e)%m + z−1 are decremented (bits cleared on zero) and
// the k counters at h_i(e)%m + z incremented (bits set). Deletes move
// z to z−1 symmetrically. "One element with multiple multiplicities is
// always inserted into the filter one time" (Section 5.3.1) — exactly k
// bits encode e no matter how large its count.
//
// With WithUnsafeUpdates the current multiplicity z is learned by
// querying B instead of the hash table (Section 5.3.1). A false
// positive on that query makes the update decrement counters that
// belong to other elements, which can clear their bits and introduce
// false negatives — the failure mode the paper warns about and the
// reason 5.3.2 exists. The mode is kept for the ablation experiment.
type CountingMultiplicity struct {
	bits   *bitvec.Vector
	counts *counters.Array
	table  *hashtable.Table // nil in unsafe mode
	m      int
	k      int
	c      int
	fam    *hashing.Family
	seed   uint64
}

// NewCountingMultiplicity returns an empty CShBF_X for counts in [1, c].
func NewCountingMultiplicity(m, k, c int, opts ...Option) (*CountingMultiplicity, error) {
	cfg, err := buildConfig(KindCountingMultiplicity, opts)
	if err != nil {
		return nil, err
	}
	if m <= 0 {
		return nil, fmt.Errorf("core: m = %d must be positive", m)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k = %d must be ≥ 1", k)
	}
	if c < 1 || c > 64 {
		return nil, fmt.Errorf("core: max multiplicity c = %d out of range [1,64]", c)
	}
	f := &CountingMultiplicity{
		bits:   bitvec.New(m + c - 1),
		counts: counters.New(m+c-1, cfg.counterWidth),
		m:      m,
		k:      k,
		c:      c,
		fam:    hashing.NewFamily(k, cfg.seed),
		seed:   cfg.seed,
	}
	if !cfg.unsafeUpdate {
		f.table = hashtable.New(cfg.seed + 3)
	}
	f.bits.SetCounter(cfg.counter)
	return f, nil
}

// SetUpdateCounter attaches a memory-access counter to the off-chip
// structures (counter array and hash table), reproducing the paper's
// on-chip/off-chip accounting of Figure 5.
func (f *CountingMultiplicity) SetUpdateCounter(mc *memmodel.Counter) {
	f.counts.SetCounter(mc)
	if f.table != nil {
		f.table.SetCounter(mc)
	}
}

// Unsafe reports whether the filter runs in the Section 5.3.1 mode.
func (f *CountingMultiplicity) Unsafe() bool { return f.table == nil }

// C returns the maximum multiplicity.
func (f *CountingMultiplicity) C() int { return f.c }

// current returns e's multiplicity as the update path sees it: exact
// from the hash table in safe mode, queried from B (via d) in unsafe
// mode.
func (f *CountingMultiplicity) current(e []byte, d hashing.Digest) int {
	if f.table != nil {
		v, _ := f.table.Get(e)
		return int(v)
	}
	return f.CountDigest(d)
}

// Insert increments e's multiplicity. It returns ErrCountOverflow when
// the multiplicity would exceed c, and ErrCounterSaturated when a
// counter in C would overflow; in both cases the filter is unchanged.
func (f *CountingMultiplicity) Insert(e []byte) error {
	return f.InsertDigest(e, f.fam.Digest(e))
}

// InsertDigest is Insert for a caller that already digested e (the
// sharded layer). d must be e's hashing.KeyDigest; the raw key is
// still needed for the backing hash table.
func (f *CountingMultiplicity) InsertDigest(e []byte, d hashing.Digest) error {
	z := f.current(e, d)
	if z+1 > f.c {
		return ErrCountOverflow
	}
	if err := f.checkHeadroom(d, z); err != nil {
		return err
	}
	if z > 0 {
		f.removeEncoding(d, z)
	}
	f.addEncoding(d, z+1)
	if f.table != nil {
		f.table.Add(e, 1)
	}
	return nil
}

// Delete decrements e's multiplicity, returning ErrNotStored if e's
// current encoding is not present.
func (f *CountingMultiplicity) Delete(e []byte) error {
	return f.DeleteDigest(e, f.fam.Digest(e))
}

// DeleteDigest is Delete for an already digested key.
func (f *CountingMultiplicity) DeleteDigest(e []byte, d hashing.Digest) error {
	z := f.current(e, d)
	if z == 0 {
		return ErrNotStored
	}
	if z > 1 {
		if err := f.checkHeadroom(d, z); err != nil {
			return err
		}
	}
	f.removeEncoding(d, z)
	if z > 1 {
		f.addEncoding(d, z-1)
	}
	if f.table != nil {
		f.table.Sub(e, 1)
	}
	return nil
}

// checkHeadroom verifies no destination counter of a z→z±1 move is
// saturated, so failed updates leave the filter untouched.
func (f *CountingMultiplicity) checkHeadroom(d hashing.Digest, z int) error {
	for i := 0; i < f.k; i++ {
		if f.counts.Peek(f.fam.ModFromDigest(i, d, f.m)+z) == f.counts.Max() {
			return ErrCounterSaturated
		}
	}
	return nil
}

// addEncoding increments the k counters of multiplicity count and sets
// the bits.
func (f *CountingMultiplicity) addEncoding(d hashing.Digest, count int) {
	o := count - 1
	for i := 0; i < f.k; i++ {
		p := f.fam.ModFromDigest(i, d, f.m) + o
		f.counts.Inc(p)
		f.bits.Set(p)
	}
}

// removeEncoding decrements the k counters of multiplicity count,
// clearing bits whose counters reach zero (Figure 5, steps 2–3). In
// unsafe mode a false-positive z can decrement counters owned by other
// elements — the documented false-negative mechanism.
func (f *CountingMultiplicity) removeEncoding(d hashing.Digest, count int) {
	o := count - 1
	for i := 0; i < f.k; i++ {
		p := f.fam.ModFromDigest(i, d, f.m) + o
		if v, ok := f.counts.Dec(p); ok && v == 0 {
			f.bits.Clear(p)
		}
	}
}

// candidateMask intersects the k c-bit windows over B for the element
// digested as d.
func (f *CountingMultiplicity) candidateMask(d hashing.Digest) uint64 {
	var all uint64
	if f.c == 64 {
		all = ^uint64(0)
	} else {
		all = 1<<uint(f.c) - 1
	}
	cand := all
	for i := 0; i < f.k && cand != 0; i++ {
		cand &= f.bits.Window(f.fam.ModFromDigest(i, d, f.m), f.c)
	}
	return cand
}

// Count returns the reported multiplicity of e (largest candidate, 0 if
// absent), reading only the on-chip array B.
func (f *CountingMultiplicity) Count(e []byte) int {
	return f.CountDigest(f.fam.Digest(e))
}

// CountDigest answers Count for the element whose digest is d.
func (f *CountingMultiplicity) CountDigest(d hashing.Digest) int {
	cand := f.candidateMask(d)
	if cand == 0 {
		return 0
	}
	return 64 - bits.LeadingZeros64(cand)
}

// ExactCount returns e's true multiplicity from the backing hash table.
// It panics in unsafe mode, which keeps no table — callers choosing
// 5.3.1 semantics explicitly gave up exact counts.
func (f *CountingMultiplicity) ExactCount(e []byte) int {
	if f.table == nil {
		panic("core: ExactCount unavailable with unsafe updates (Section 5.3.1 mode)")
	}
	v, _ := f.table.Get(e)
	return int(v)
}

// SizeBytes returns the combined footprint of B and C (the hash table is
// reported separately by design: the paper stores it off-chip).
func (f *CountingMultiplicity) SizeBytes() int {
	return f.bits.SizeBytes() + f.counts.SizeBytes()
}
