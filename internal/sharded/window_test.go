package sharded

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shbf/internal/core"
)

func windowSpec(g, shards int) core.Spec {
	return core.Spec{Kind: core.KindWindowShardedMembership, M: 1 << 18, K: 8,
		Shards: shards, Generations: g, Seed: 11}
}

func windowKeys(prefix string, n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%s-%07d", prefix, i))
	}
	return keys
}

// TestWindowExpiry: the sharded composition keeps the ring contract —
// keys live G−1..G rotations, then expire, across every shard.
func TestWindowExpiry(t *testing.T) {
	const g = 3
	w, err := NewWindow(windowSpec(g, 8))
	if err != nil {
		t.Fatal(err)
	}
	keys := windowKeys("flow", 2000)
	if err := w.AddAll(keys); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < g-1; r++ {
		if err := w.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	dst := w.ContainsAll(nil, keys)
	for i := range keys {
		if !dst[i] {
			t.Fatalf("key %d lost before its generation was retired", i)
		}
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	dst = w.ContainsAll(dst, keys)
	hits := 0
	for i := range keys {
		if dst[i] {
			hits++
		}
	}
	// Only hash-collision false positives may remain.
	if hits > len(keys)/100 {
		t.Fatalf("%d of %d keys still answer true after %d rotations", hits, len(keys), g)
	}
	if got := w.Window().Epoch; got != g {
		t.Fatalf("epoch %d after %d rotations", got, g)
	}
}

// TestWindowBatchEqualsScalar across shard routing and rotations.
func TestWindowBatchEqualsScalar(t *testing.T) {
	w, err := NewWindow(windowSpec(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	var probes [][]byte
	for tick := 0; tick < 5; tick++ {
		batch := windowKeys(fmt.Sprintf("t%d", tick), 400)
		if err := w.AddAll(batch); err != nil {
			t.Fatal(err)
		}
		probes = append(probes, batch[:100]...)
		if err := w.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	probes = append(probes, windowKeys("never", 400)...)
	dst := w.ContainsAll(nil, probes)
	for i, e := range probes {
		if dst[i] != w.Contains(e) {
			t.Fatalf("key %d: batch %v scalar %v", i, dst[i], w.Contains(e))
		}
	}
}

// TestWindowConcurrentQueriesDuringRotation drives queries, writes and
// rotations from many goroutines; the race detector (CI's -race job)
// checks the striped locking. The visibility invariant — just-written
// keys answer true — can only be asserted for iterations no rotation
// overlapped (a stalled worker's keys may legitimately expire if G
// rotations slip between its write and its read), so each iteration
// brackets itself with the window epoch and asserts only when the
// epoch held still.
func TestWindowConcurrentQueriesDuringRotation(t *testing.T) {
	w, err := NewWindow(windowSpec(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	checked := make([]atomic.Int64, workers)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			keys := windowKeys(fmt.Sprintf("w%d", wk), 64)
			dst := make([]bool, len(keys))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				e0 := w.Window().Epoch
				if err := w.AddAll(keys); err != nil {
					t.Error(err)
					return
				}
				dst = w.ContainsAll(dst, keys)
				if w.Window().Epoch != e0 {
					continue // a rotation overlapped; visibility not guaranteed
				}
				checked[wk].Add(1)
				for j := range dst {
					if !dst[j] {
						t.Errorf("worker %d iteration %d: fresh key %d invisible with no rotation in flight", wk, i, j)
						return
					}
				}
			}
		}(wk)
	}
	for r := 0; r < 50; r++ {
		if err := w.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	// Rotations are done; let every worker complete at least one
	// rotation-free iteration so the visibility assertion has teeth.
	deadline := time.Now().Add(10 * time.Second)
	for wk := range checked {
		for checked[wk].Load() == 0 {
			if time.Now().After(deadline) {
				t.Errorf("worker %d never got a rotation-free iteration to assert on", wk)
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
}

// TestWindowMarshalRoundTrip: the shard-set snapshot of ShBW rings
// restores contents, head positions and epochs.
func TestWindowMarshalRoundTrip(t *testing.T) {
	spec := windowSpec(3, 4)
	spec.Tick = 30 * time.Second
	w, err := NewWindow(spec)
	if err != nil {
		t.Fatal(err)
	}
	old := windowKeys("old", 500)
	live := windowKeys("live", 500)
	if err := w.AddAll(old); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := w.AddAll(live); err != nil {
		t.Fatal(err)
	}
	blob, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Window
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.Spec() != w.Spec() {
		t.Fatalf("spec changed: %+v vs %+v", back.Spec(), w.Spec())
	}
	if got := back.Window().Epoch; got != 1 {
		t.Fatalf("restored epoch %d, want 1", got)
	}
	for _, e := range live {
		if !back.Contains(e) {
			t.Fatalf("live key %q lost across round trip", e)
		}
	}
	// Two more rotations must retire old (3 total) but keep live alive
	// for one of them — the restored head position decides which.
	for i := 0; i < 2; i++ {
		if err := back.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	liveHits, oldHits := 0, 0
	for i := range live {
		if back.Contains(live[i]) {
			liveHits++
		}
		if back.Contains(old[i]) {
			oldHits++
		}
	}
	if liveHits != len(live) {
		t.Fatalf("live generation expired too early: %d/%d", liveHits, len(live))
	}
	if oldHits > len(old)/50 {
		t.Fatalf("old generation survived %d rotations: %d/%d hits", 3, oldHits, len(old))
	}
}

// TestWindowMultiplicitySharded: counts route, sum, and expire.
func TestWindowMultiplicitySharded(t *testing.T) {
	spec := core.Spec{Kind: core.KindWindowShardedMultiplicity, M: 1 << 19, K: 4, C: 57,
		Shards: 4, Generations: 2, Seed: 3, CounterWidth: 8}
	w, err := NewWindowMultiplicity(spec)
	if err != nil {
		t.Fatal(err)
	}
	keys := windowKeys("cnt", 300)
	for round := 0; round < 3; round++ {
		if err := w.AddAll(keys); err != nil {
			t.Fatal(err)
		}
	}
	dst := w.CountAll(nil, keys)
	for i := range keys {
		if dst[i] < 3 {
			t.Fatalf("key %d count %d underestimates 3", i, dst[i])
		}
		if dst[i] != w.Count(keys[i]) {
			t.Fatalf("key %d batch/scalar mismatch", i)
		}
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if got := w.Count(keys[i]); got != 0 {
			t.Fatalf("key %d count %d after full expiry", i, got)
		}
	}
}

// TestWindowAssociationSharded: region answers union across ring and
// shards, and round-trip through the snapshot.
func TestWindowAssociationSharded(t *testing.T) {
	spec := core.Spec{Kind: core.KindWindowShardedAssociation, M: 1 << 18, K: 4,
		Shards: 4, Generations: 3, Seed: 3}
	w, err := NewWindowAssociation(spec)
	if err != nil {
		t.Fatal(err)
	}
	keys := windowKeys("as", 400)
	for _, e := range keys[:200] {
		if err := w.InsertS1(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range keys[100:300] {
		if err := w.InsertS2(e); err != nil {
			t.Fatal(err)
		}
	}
	dst := w.QueryAll(nil, keys)
	for i, e := range keys {
		if dst[i] != w.Query(e) {
			t.Fatalf("key %d batch/scalar mismatch", i)
		}
	}
	// A key inserted into S1 one tick and S2 the next must keep both
	// candidates.
	r := w.Query(keys[150])
	if !r.Contains(core.RegionS1Only) || !r.Contains(core.RegionS2Only) {
		t.Fatalf("straddling key answers %s", r)
	}
	blob, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back WindowAssociation
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for _, e := range keys {
		if back.Query(e) != w.Query(e) {
			t.Fatal("answers changed across round trip")
		}
	}
}

// TestWindowRotateIfDueLockstep: the wall-clock policy lives at the
// window level, so one due tick advances every shard exactly once.
func TestWindowRotateIfDueLockstep(t *testing.T) {
	spec := windowSpec(3, 4)
	spec.Tick = time.Minute
	w, err := NewWindow(spec)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1700000000, 0)
	if due, _ := w.RotateIfDue(base); due {
		t.Fatal("first call must arm, not rotate")
	}
	due, err := w.RotateIfDue(base.Add(90 * time.Second))
	if err != nil || !due {
		t.Fatalf("due=%v err=%v after a full tick", due, err)
	}
	in := w.Window()
	if in.Epoch != 1 {
		t.Fatalf("epoch %d, want 1 (lockstep)", in.Epoch)
	}
	if in.Tick != time.Minute {
		t.Fatalf("tick %s", in.Tick)
	}
}

// TestSnapshotRejectsSplicedShards: decodeSnapshot validates shards
// against each other, so a crafted container mixing shards from rings
// of different geometry (which would otherwise panic the Window()
// aggregation) or from a different base seed (which would corrupt
// routing) is rejected, not assembled.
func TestSnapshotRejectsSplicedShards(t *testing.T) {
	shardBlobs := func(spec core.Spec) [][]byte {
		t.Helper()
		w, err := NewWindow(spec)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := w.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		// Parse the ShBS container: 6-byte header, shard count, then
		// length-prefixed blobs.
		buf := snap[6:]
		count, sz := binary.Uvarint(buf)
		buf = buf[sz:]
		blobs := make([][]byte, count)
		for i := range blobs {
			n, sz := binary.Uvarint(buf)
			buf = buf[sz:]
			blobs[i] = buf[:n]
			buf = buf[n:]
		}
		return blobs
	}
	splice := func(a, b []byte) []byte {
		out := []byte{'S', 'h', 'B', 'S', snapVersion, shardKindWindowMembership}
		out = binary.AppendUvarint(out, 2)
		for _, blob := range [][]byte{a, b} {
			out = binary.AppendUvarint(out, uint64(len(blob)))
			out = append(out, blob...)
		}
		return out
	}

	specG2 := windowSpec(2, 2)
	g2 := shardBlobs(specG2)
	specG3 := windowSpec(3, 2)
	g3 := shardBlobs(specG3)
	otherSeed := specG2
	otherSeed.Seed = 99
	seed99 := shardBlobs(otherSeed)

	var w Window
	if err := w.UnmarshalBinary(splice(g2[0], g3[1])); err == nil {
		t.Fatal("accepted a snapshot splicing G=2 and G=3 shards")
	}
	if err := w.UnmarshalBinary(splice(g2[0], seed99[1])); err == nil {
		t.Fatal("accepted a snapshot splicing shards from different base seeds")
	}
	// Sanity: unspliced containers of the same shards still decode.
	if err := w.UnmarshalBinary(splice(g2[0], g2[1])); err != nil {
		t.Fatalf("legitimate container rejected: %v", err)
	}
}
