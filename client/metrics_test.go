package client_test

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"shbf/client"
)

// parseScrape splits a Prometheus text scrape into exact series→value,
// failing on malformed or duplicate lines.
func parseScrape(t *testing.T, text string) map[string]float64 {
	t.Helper()
	series := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		if _, dup := series[line[:i]]; dup {
			t.Fatalf("duplicate series %q", line[:i])
		}
		series[line[:i]] = v
	}
	return series
}

// sumSeriesPrefix totals every series of one family in a raw scrape,
// without *testing.T (safe inside soak goroutines).
func sumSeriesPrefix(scrape []byte, prefix string) (float64, error) {
	var sum float64
	for _, line := range strings.Split(string(scrape), "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return 0, fmt.Errorf("malformed sample %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return 0, fmt.Errorf("sample %q: %w", line, err)
		}
		sum += v
	}
	return sum, nil
}

// metricsScript drives a fixed op mix — successes, a conflict, a
// rate-quota shed, a rotation, a freeze — through one client, so the
// exactness test can pin every resulting counter value per transport.
func metricsScript(t *testing.T, c *client.Client) {
	t.Helper()
	gens := 2
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateNamespace(client.NamespaceConfig{Name: "w", WindowGenerations: &gens}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateNamespace(client.NamespaceConfig{Name: "q", RatePerSec: 1, RateBurst: 1}); err != nil {
		t.Fatal(err)
	}
	w := c.Namespace("w")
	set := w.Set()
	keys := make([][]byte, 5)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("metrics-key-%d", i))
	}
	if err := set.AddAll(keys); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Check(keys[:3]); err != nil {
		t.Fatal(err)
	}
	assoc := w.Associator()
	if err := assoc.InsertAll(1, keys[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := assoc.Classify(keys[:2]); err != nil {
		t.Fatal(err)
	}
	cnt := w.Counter()
	if err := cnt.InsertCount(keys[0], 1); err != nil {
		t.Fatal(err)
	}
	if err := cnt.InsertCount(keys[1], 3); err != nil {
		t.Fatal(err)
	}
	if _, err := cnt.Counts(keys[:2]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Namespace("").Rotate(); !client.IsConflict(err) {
		t.Fatalf("rotate on classic namespace: %v", err)
	}
	// A 1 keys/s, burst-1 quota always sheds a write (it needs a
	// quarter-bucket reserve on top of its own token), so the 429 is
	// deterministic.
	if err := c.Namespace("q").Set().AddAll(keys[:1]); !client.IsOverloaded(err) {
		t.Fatalf("rate-limited write: %v", err)
	}
	if _, err := w.Freeze(); err != nil {
		t.Fatal(err)
	}
	if err := set.AddAll(keys[:1]); !client.IsConflict(err) {
		t.Fatalf("write to frozen namespace: %v", err)
	}
}

// metricsScriptWant is the exact counter state metricsScript leaves
// behind, keyed by series. pingOp is the transport's liveness op label
// ("ping" over ShBP, "healthz" over HTTP).
func metricsScriptWant(transport, pingOp string) map[string]float64 {
	want := map[string]float64{}
	req := func(op, status string, v float64) {
		want[fmt.Sprintf("shbf_requests_total{transport=%q,op=%q,status=%q}", transport, op, status)] = v
	}
	req(pingOp, "ok", 1)
	req("namespace-create", "ok", 2)
	req("membership-add", "ok", 1)
	req("membership-add", "conflict", 1)
	req("membership-add", "overloaded", 1)
	req("membership-add", "not-found", 0)
	req("membership-contains", "ok", 1)
	req("association-add", "ok", 1)
	req("association-query", "ok", 1)
	req("multiplicity-add", "ok", 2)
	req("multiplicity-count", "ok", 1)
	req("rotate", "ok", 1)
	req("rotate", "conflict", 1)
	req("freeze", "ok", 1)
	req("stats", "ok", 0) // registered but never driven

	want[fmt.Sprintf("shbf_request_duration_seconds_count{transport=%q,op=%q}", transport, "membership-add")] = 3
	want[fmt.Sprintf("shbf_request_duration_seconds_count{transport=%q,op=%q}", transport, "rotate")] = 2

	nsKeys := func(ns, op string, v float64) {
		want[fmt.Sprintf("shbf_namespace_keys_total{namespace=%q,op=%q}", ns, op)] = v
	}
	nsKeys("w", "membership_add", 5)
	nsKeys("w", "membership_contains", 3)
	nsKeys("w", "association_update", 2)
	nsKeys("w", "association_query", 2)
	nsKeys("w", "multiplicity_update", 4) // counts 1+3, not 2 keys
	nsKeys("w", "multiplicity_query", 2)
	nsKeys("q", "membership_add", 0) // the shed write applied nothing

	want[`shbf_namespace_shed_total{namespace="q",reason="rate"}`] = 1
	want[`shbf_namespace_shed_total{namespace="w",reason="rate"}`] = 0
	want[`shbf_namespace_shed_total{namespace="default",reason="rate"}`] = 0
	want[`shbf_namespace_rotations_total{namespace="w"}`] = 1
	want[`shbf_namespace_rotations_total{namespace="default"}`] = 0
	want[`shbf_namespace_rotation_epoch{namespace="w"}`] = 1
	want[`shbf_namespace_frozen{namespace="w"}`] = 1
	want[`shbf_namespace_frozen{namespace="default"}`] = 0
	want[`shbf_namespaces`] = 3
	return want
}

// TestMetricsExactness drives the scripted mix over each transport
// against a fresh daemon and asserts the resulting counters
// byte-exactly — not approximately, not monotonic: exact.
func TestMetricsExactness(t *testing.T) {
	cases := []struct {
		transport, pingOp string
	}{
		{"shbp", "ping"},
		{"http", "healthz"},
	}
	for _, tc := range cases {
		t.Run(tc.transport, func(t *testing.T) {
			d := startDaemon(t, testConfig())
			c := d.clients(t)[tc.transport]
			metricsScript(t, c)
			scrape, err := c.Metrics()
			if err != nil {
				t.Fatal(err)
			}
			series := parseScrape(t, string(scrape))
			for key, want := range metricsScriptWant(tc.transport, tc.pingOp) {
				got, ok := series[key]
				if !ok {
					t.Errorf("series %s missing from the scrape", key)
					continue
				}
				if got != want {
					t.Errorf("%s = %v, want exactly %v", key, got, want)
				}
			}
			// Nothing leaked onto the other transport's counters.
			other := "http"
			if tc.transport == "http" {
				other = "shbp"
			}
			prefix := fmt.Sprintf("shbf_requests_total{transport=%q", other)
			for key, v := range series {
				if strings.HasPrefix(key, prefix) && v != 0 {
					t.Errorf("%s = %v; the %s mix must not count on the %s transport", key, v, tc.transport, other)
				}
			}
		})
	}
}

// TestMetricsTransportByteIdentity: after identical traffic, the ShBP
// metrics op and GET /metrics serve the same bytes — the acceptance
// contract that lets one dashboard scrape either port.
func TestMetricsTransportByteIdentity(t *testing.T) {
	d := startDaemon(t, testConfig())
	cs := d.clients(t)
	keys := make([][]byte, 32)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("identity-%d", i))
	}
	for _, c := range []*client.Client{cs["shbp"], cs["http"]} {
		set := c.Namespace("").Set()
		if err := set.AddAll(keys); err != nil {
			t.Fatal(err)
		}
		if _, err := set.Check(keys); err != nil {
			t.Fatal(err)
		}
	}
	viaShBP, err := cs["shbp"].Metrics()
	if err != nil {
		t.Fatal(err)
	}
	viaHTTP, err := cs["http"].Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaShBP, viaHTTP) {
		t.Fatalf("scrapes diverge between transports:\nshbp %d bytes, http %d bytes",
			len(viaShBP), len(viaHTTP))
	}
	again, err := cs["shbp"].Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaShBP, again) {
		t.Fatal("a scrape changed the next scrape's bytes")
	}
}

// TestMetricsScrapeRaceSoak scrapes both transports continuously while
// writers, a rotator and namespace CRUD (including freezes) hammer the
// daemon — the -race check that scrape-time collectors read live state
// safely — and asserts the summed request counter never goes backward.
func TestMetricsScrapeRaceSoak(t *testing.T) {
	d := startDaemon(t, testConfig())
	cs := d.clients(t)
	gens := 2
	if err := cs["shbp"].CreateNamespace(client.NamespaceConfig{Name: "soak-win", WindowGenerations: &gens}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var load, scrapers sync.WaitGroup

	load.Add(1)
	go func() { // writer: membership churn on two namespaces
		defer load.Done()
		set := cs["shbp"].Namespace("").Set()
		win := cs["shbp"].Namespace("soak-win").Set()
		for i := 0; i < 150; i++ {
			batch := make([][]byte, 8)
			for j := range batch {
				batch[j] = []byte(fmt.Sprintf("soak-%d-%d", i, j))
			}
			if err := set.AddAll(batch); err != nil {
				t.Error(err)
				return
			}
			_ = win.AddAll(batch) // may conflict with a concurrent freeze; the soak only needs traffic
			if _, err := set.Check(batch); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	load.Add(1)
	go func() { // rotator
		defer load.Done()
		ns := cs["http"].Namespace("soak-win")
		for i := 0; i < 80; i++ {
			_, _, _ = ns.Rotate() // conflicts with a concurrent freeze are fine
			time.Sleep(time.Millisecond)
		}
	}()

	load.Add(1)
	go func() { // namespace CRUD with freezes
		defer load.Done()
		c := cs["http"]
		for i := 0; i < 30; i++ {
			name := fmt.Sprintf("soak-tmp-%d", i)
			if err := c.CreateNamespace(client.NamespaceConfig{Name: name}); err != nil {
				t.Error(err)
				return
			}
			ns := c.Namespace(name)
			if err := ns.Set().AddAll([][]byte{[]byte(name)}); err != nil {
				t.Error(err)
				return
			}
			if _, err := ns.Freeze(); err != nil {
				t.Error(err)
				return
			}
			if err := c.DeleteNamespace(name); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for transport, c := range cs {
		scrapers.Add(1)
		go func(transport string, c *client.Client) { // scraper
			defer scrapers.Done()
			last := -1.0
			for {
				select {
				case <-stop:
					return
				default:
				}
				scrape, err := c.Metrics()
				if err != nil {
					t.Errorf("%s scrape: %v", transport, err)
					return
				}
				sum, err := sumSeriesPrefix(scrape, "shbf_requests_total{")
				if err != nil {
					t.Errorf("%s scrape: %v", transport, err)
					return
				}
				if sum < last {
					t.Errorf("%s scrape went backward: %v after %v", transport, sum, last)
					return
				}
				last = sum
			}
		}(transport, c)
	}

	// The load goroutines bound their own iteration counts; scrapers
	// run until the load is done, so every scrape races live mutation.
	load.Wait()
	close(stop)
	scrapers.Wait()
}

// TestClientStatsCounting pins the client-side counters: a
// deterministically shed write under a retry policy yields exact
// request/error/retry counts, shared across derived handles.
func TestClientStatsCounting(t *testing.T) {
	d := startDaemon(t, testConfig())
	c := d.clients(t)["shbp"]
	if err := c.CreateNamespace(client.NamespaceConfig{Name: "rl", RatePerSec: 1, RateBurst: 1}); err != nil {
		t.Fatal(err)
	}
	base := c.Stats()
	if base.Requests != 1 || base.Errors != 0 || base.Retries != 0 {
		t.Fatalf("after one create: %+v", base)
	}

	rc := c.WithRetry(client.RetryPolicy{
		MaxRetries: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
	})
	err := rc.Namespace("rl").Set().AddAll([][]byte{[]byte("shed-me")})
	if !client.IsOverloaded(err) {
		t.Fatalf("rate-limited write: %v", err)
	}
	st := c.Stats()
	if st.Requests != base.Requests+3 { // 1 try + 2 retries
		t.Errorf("Requests = %d, want %d", st.Requests, base.Requests+3)
	}
	if st.Errors != 3 {
		t.Errorf("Errors = %d, want 3", st.Errors)
	}
	if st.Retries != 2 {
		t.Errorf("Retries = %d, want 2", st.Retries)
	}
	// Derived handles share the dialed client's counters.
	if got := rc.Stats(); got != st {
		t.Errorf("derived handle stats %+v != dialed client stats %+v", got, st)
	}

	// Non-retryable daemon answers count one error and no retries.
	if err := rc.Namespace("absent").Set().AddAll([][]byte{[]byte("x")}); !client.IsNotFound(err) {
		t.Fatalf("write to unknown namespace: %v", err)
	}
	st2 := c.Stats()
	if st2.Requests != st.Requests+1 || st2.Errors != st.Errors+1 || st2.Retries != st.Retries {
		t.Errorf("after not-found: %+v, want +1 request, +1 error, +0 retries over %+v", st2, st)
	}
}
