package memmodel

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Reads() != 0 || c.Writes() != 0 || c.Total() != 0 {
		t.Fatalf("zero counter not zero: %v", &c)
	}
	c.AddReads(3)
	c.AddWrites(2)
	if got := c.Reads(); got != 3 {
		t.Errorf("Reads() = %d, want 3", got)
	}
	if got := c.Writes(); got != 2 {
		t.Errorf("Writes() = %d, want 2", got)
	}
	if got := c.Total(); got != 5 {
		t.Errorf("Total() = %d, want 5", got)
	}
	c.Reset()
	if c.Total() != 0 {
		t.Errorf("Total() after Reset = %d, want 0", c.Total())
	}
}

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.AddReads(1) // must not panic
	c.AddWrites(1)
	c.Reset()
	if c.Reads() != 0 || c.Writes() != 0 || c.Total() != 0 {
		t.Fatal("nil counter should report zero")
	}
}

func TestCounterString(t *testing.T) {
	var c Counter
	c.AddReads(7)
	c.AddWrites(1)
	if got, want := c.String(), "reads=7 writes=1"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestAccessCountSingleWindow(t *testing.T) {
	// The paper's guarantee: any window of width w̄ ≤ w−7 = 57 starting at
	// any bit position costs exactly one access.
	for pos := 0; pos < 512; pos++ {
		for width := 1; width <= WordBits-7; width++ {
			if got := AccessCount(pos, width); got != 1 {
				t.Fatalf("AccessCount(%d, %d) = %d, want 1", pos, width, got)
			}
		}
	}
}

func TestAccessCountWideWindows(t *testing.T) {
	tests := []struct {
		pos, width, want int
	}{
		{0, 64, 1},   // aligned full word
		{0, 0, 0},    // empty window
		{0, -5, 0},   // nonsense width
		{1, 64, 2},   // crosses a byte so byte span is 9 bytes = 72 bits
		{8, 64, 1},   // byte-aligned full word
		{7, 58, 2},   // j=8 within byte, j-1+w̄ = 7+58 = 65 > 64
		{0, 128, 2},  // two words
		{3, 128, 3},  // unaligned two-word window spans 17 bytes
		{0, 65, 2},   // just over a word
		{100, 57, 1}, // paper's w̄=57 anywhere is one access
		{1000, 8, 1}, // single byte
	}
	for _, tt := range tests {
		if got := AccessCount(tt.pos, tt.width); got != tt.want {
			t.Errorf("AccessCount(%d, %d) = %d, want %d", tt.pos, tt.width, got, tt.want)
		}
	}
}

func TestAccessCountProperties(t *testing.T) {
	// Property: cost is monotone in width and never exceeds
	// ceil(width/8+1 bytes of slack) worth of words.
	f := func(pos uint16, width uint8) bool {
		p, w := int(pos), int(width)
		if w == 0 {
			return AccessCount(p, w) == 0
		}
		got := AccessCount(p, w)
		if got < 1 {
			return false
		}
		// Upper bound: with up to 7 bits of slack on each side the window
		// spans at most (w+14)/8+1 bytes.
		maxBytes := (w+14)/8 + 1
		maxWords := (maxBytes*8 + WordBits - 1) / WordBits
		if got > maxWords {
			return false
		}
		// Monotonicity in width.
		return AccessCount(p, w) <= AccessCount(p, w+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCostModel(t *testing.T) {
	m := DefaultCostModel()
	if m.SRAMAccess >= m.DRAMAccess {
		t.Fatal("SRAM must be faster than DRAM in the default model")
	}
	if got, want := m.QueryCost(4), 4*time.Nanosecond; got != want {
		t.Errorf("QueryCost(4) = %v, want %v", got, want)
	}
	if got, want := m.UpdateCost(2, 3), 2*time.Nanosecond+150*time.Nanosecond; got != want {
		t.Errorf("UpdateCost(2,3) = %v, want %v", got, want)
	}
}
