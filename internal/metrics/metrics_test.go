package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "Ops served.", Label{"op", "add"}, Label{"status", "ok"})
	c2 := r.NewCounter("test_ops_total", "Ops served.", Label{"op", "add"}, Label{"status", "conflict"})
	g := r.NewGauge("test_depth", "Queue depth.")
	c.Add(41)
	c.Inc()
	c2.Inc()
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Dec()

	want := strings.Join([]string{
		"# HELP test_depth Queue depth.",
		"# TYPE test_depth gauge",
		"test_depth 6",
		"# HELP test_ops_total Ops served.",
		"# TYPE test_ops_total counter",
		`test_ops_total{op="add",status="ok"} 42`,
		`test_ops_total{op="add",status="conflict"} 1`,
		"",
	}, "\n")
	if got := string(r.Render()); got != want {
		t.Fatalf("render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestFamiliesSortedSeriesStable(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zzz_total", "Last family.")
	r.NewGauge("aaa", "First family.")
	out := string(r.Render())
	if strings.Index(out, "aaa") > strings.Index(out, "zzz_total") {
		t.Fatalf("families not sorted by name:\n%s", out)
	}
	// Two renders of unchanged state are byte-identical.
	if a, b := string(r.Render()), string(r.Render()); a != b {
		t.Fatalf("renders differ:\n%s\nvs\n%s", a, b)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_latency_seconds", "Latency.",
		[]float64{0.001, 0.01, 0.1}, Label{"op", "q"})
	h.Observe(500 * time.Microsecond) // le=0.001
	h.Observe(1 * time.Millisecond)   // le=0.001 (boundary inclusive)
	h.Observe(5 * time.Millisecond)   // le=0.01
	h.Observe(2 * time.Second)        // +Inf

	want := strings.Join([]string{
		"# HELP test_latency_seconds Latency.",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{op="q",le="0.001"} 2`,
		`test_latency_seconds_bucket{op="q",le="0.01"} 3`,
		`test_latency_seconds_bucket{op="q",le="0.1"} 3`,
		`test_latency_seconds_bucket{op="q",le="+Inf"} 4`,
		`test_latency_seconds_sum{op="q"} 2.0065`,
		`test_latency_seconds_count{op="q"} 4`,
		"",
	}, "\n")
	if got := string(r.Render()); got != want {
		t.Fatalf("histogram render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestFuncsAndCollectors(t *testing.T) {
	r := NewRegistry()
	n := uint64(3)
	r.CounterFunc("test_rotations_total", "Rotations.", func() uint64 { return n })
	r.GaugeFunc("test_fill_ratio", "Fill.", func() float64 { return 0.25 }, Label{"ns", "default"})
	r.CollectGauge("test_ns_bits", "Bits per namespace.", func(e *Emitter) {
		e.EmitUint(1024, Label{"ns", "a"})
		e.Emit(0.5, Label{"ns", "b"})
	})

	out := string(r.Render())
	for _, line := range []string{
		"test_rotations_total 3",
		`test_fill_ratio{ns="default"} 0.25`,
		`test_ns_bits{ns="a"} 1024`,
		`test_ns_bits{ns="b"} 0.5`,
		"# TYPE test_ns_bits gauge",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing line %q in:\n%s", line, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("test_esc_total", "Weird labels.",
		Label{"path", `a\b"c` + "\n"})
	out := string(r.Render())
	want := `test_esc_total{path="a\\b\"c\n"} 0`
	if !strings.Contains(out, want+"\n") {
		t.Fatalf("escaping wrong, want %q in:\n%s", want, out)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{1, "1"},
		{42, "42"},
		{0.25, "0.25"},
		{1e-6, "1e-06"},
		{1.5e15, "1.5e+15"},
	}
	for _, c := range cases {
		if got := string(appendFloat(nil, c.v)); got != c.want {
			t.Errorf("appendFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestDuplicateAndConflictPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.NewCounter("test_dup_total", "x", Label{"a", "1"})
	mustPanic("duplicate series", func() { r.NewCounter("test_dup_total", "x", Label{"a", "1"}) })
	mustPanic("type conflict", func() { r.NewGauge("test_dup_total", "x") })
	mustPanic("bad name", func() { r.NewCounter("9bad", "x") })
	mustPanic("bad label key", func() { r.NewCounter("test_ok_total", "x", Label{"le!", "1"}) })
}

func TestConcurrentUpdatesAndRender(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_conc_total", "x")
	g := r.NewGauge("test_conc_gauge", "x")
	h := r.NewHistogram("test_conc_seconds", "x", []float64{0.001, 0.1})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Inc()
				h.Observe(time.Microsecond)
				g.Dec()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = r.Render()
			}
		}
	}()
	wg.Wait()
	close(done)
	if c.Load() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Load())
	}
	if g.Load() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Load())
	}
	out := string(r.Render())
	if !strings.Contains(out, "test_conc_seconds_count 4000\n") {
		t.Fatalf("histogram count wrong:\n%s", out)
	}
}
