package baseline

import (
	"fmt"

	"shbf/internal/counters"
	"shbf/internal/hashing"
)

// CMSketch is the count-min sketch of Cormode & Muthukrishnan [9]
// (paper Sections 2.3 and 5.5, Figure 6(a)): d rows of r counters, one
// hash function per row. Inserting increments one counter per row;
// the estimate is the row-wise minimum, which never underestimates.
// "CM sketch is simple and easy to implement, but is not memory
// efficient, as the minimal unit is a counter instead of a bit"
// (Section 5.5) — the property Figure 11(a) measures.
type CMSketch struct {
	rows []*counters.Array
	d    int
	r    int
	fam  *hashing.Family
}

// NewCMSketch returns an empty d×r sketch with counters of the
// configured width (Figure 11 uses 6 bits).
func NewCMSketch(d, r int, opts ...Option) (*CMSketch, error) {
	cfg := applyOptions(opts)
	if d < 1 {
		return nil, fmt.Errorf("baseline: depth d = %d must be ≥ 1", d)
	}
	if r < 1 {
		return nil, fmt.Errorf("baseline: row size r = %d must be ≥ 1", r)
	}
	s := &CMSketch{
		rows: make([]*counters.Array, d),
		d:    d,
		r:    r,
		fam:  hashing.NewFamily(d, cfg.seed),
	}
	for i := range s.rows {
		s.rows[i] = counters.New(r, cfg.counterWidth)
		s.rows[i].SetCounter(cfg.counter)
	}
	return s, nil
}

// D and R report the geometry.
func (s *CMSketch) D() int { return s.d }
func (s *CMSketch) R() int { return s.r }

// HashOpsPerOp returns d — the budget the SCM sketch halves.
func (s *CMSketch) HashOpsPerOp() int { return s.d }

// Insert increments one counter per row (one digest pass, d mixes).
func (s *CMSketch) Insert(e []byte) {
	d := s.fam.Digest(e)
	for i, row := range s.rows {
		row.Inc(s.fam.ModFromDigest(i, d, s.r))
	}
}

// Count returns the count-min estimate (row-wise minimum, never an
// underestimate). A zero counter short-circuits the scan.
func (s *CMSketch) Count(e []byte) uint64 {
	d := s.fam.Digest(e)
	min := ^uint64(0)
	for i, row := range s.rows {
		v := row.Get(s.fam.ModFromDigest(i, d, s.r))
		if v < min {
			min = v
			if min == 0 {
				return 0
			}
		}
	}
	return min
}

// SizeBytes returns the total counter footprint.
func (s *CMSketch) SizeBytes() int {
	total := 0
	for _, row := range s.rows {
		total += row.SizeBytes()
	}
	return total
}

// Overflows reports counter saturation events across all rows.
func (s *CMSketch) Overflows() uint64 {
	var total uint64
	for _, row := range s.rows {
		total += row.Overflows()
	}
	return total
}
