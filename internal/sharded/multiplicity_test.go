package sharded

import (
	"runtime"
	"sync"
	"testing"

	"shbf/internal/core"
)

func TestMultiplicityCounts(t *testing.T) {
	f, err := NewMultiplicity(1<<18, 8, 57, 4)
	if err != nil {
		t.Fatal(err)
	}
	elems := genElements(3000, 20)
	for i, e := range elems {
		want := i%5 + 1
		for j := 0; j < want; j++ {
			if err := f.Insert(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	if f.N() != 3000 {
		t.Fatalf("N = %d, want 3000", f.N())
	}
	// No underestimates, ever (paper's one-sided multiplicity bound).
	for i, e := range elems {
		want := i%5 + 1
		if got := f.Count(e); got < want {
			t.Fatalf("element %d: Count = %d, want ≥ %d", i, got, want)
		}
	}
}

func TestMultiplicityInsertDelete(t *testing.T) {
	f, err := NewMultiplicity(1<<16, 8, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := []byte("counted-element")
	for i := 0; i < 8; i++ {
		if err := f.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Insert(e); err != core.ErrCountOverflow {
		t.Fatalf("insert past c returned %v, want ErrCountOverflow", err)
	}
	for i := 0; i < 8; i++ {
		if err := f.Delete(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Delete(e); err != core.ErrNotStored {
		t.Fatalf("delete of absent element returned %v, want ErrNotStored", err)
	}
	if got := f.Count(e); got != 0 {
		// A false positive is possible but wildly unlikely at this load.
		t.Fatalf("Count after full delete = %d, want 0", got)
	}
}

func TestMultiplicityConcurrentUse(t *testing.T) {
	// Run with -race: concurrent incrementers and counters.
	f, err := NewMultiplicity(1<<20, 8, 57, 8)
	if err != nil {
		t.Fatal(err)
	}
	elems := genElements(4000, 21)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(elems); i += workers {
				for j := 0; j < i%3+1; j++ {
					if err := f.Insert(elems[i]); err != nil {
						t.Error(err)
						return
					}
				}
			}
			for i := 0; i < len(elems); i += workers {
				f.Count(elems[i])
			}
		}(w)
	}
	wg.Wait()
	if f.N() != 4000 {
		t.Fatalf("N = %d after concurrent inserts, want 4000", f.N())
	}
	for i, e := range elems {
		want := i%3 + 1
		if got := f.Count(e); got < want {
			t.Fatalf("element %d: Count = %d, want ≥ %d", i, got, want)
		}
	}
}

func TestMultiplicitySnapshotRoundTrip(t *testing.T) {
	f, err := NewMultiplicity(1<<17, 8, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	elems := genElements(2000, 22)
	for i, e := range elems {
		for j := 0; j < i%4+1; j++ {
			if err := f.Insert(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Multiplicity
	if err := g.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if g.Shards() != f.Shards() || g.N() != f.N() || g.C() != f.C() {
		t.Fatalf("decoded geometry mismatch")
	}
	for _, e := range elems {
		if got, want := g.Count(e), f.Count(e); got != want {
			t.Fatalf("decoded filter counted %d, original %d", got, want)
		}
	}
	// The restored filter must keep supporting safe updates.
	if err := g.Insert(elems[0]); err != nil {
		t.Fatalf("post-restore insert: %v", err)
	}
	if err := g.Delete(elems[1]); err != nil {
		t.Fatalf("post-restore delete: %v", err)
	}
}

func TestMembershipSnapshotRoundTrip(t *testing.T) {
	f, err := New(1<<17, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	elems := genElements(5000, 23)
	for _, e := range elems {
		f.Add(e)
	}
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Filter
	if err := g.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if g.Shards() != f.Shards() || g.N() != f.N() {
		t.Fatalf("decoded geometry mismatch: shards %d/%d, n %d/%d",
			g.Shards(), f.Shards(), g.N(), f.N())
	}
	for _, e := range elems {
		if !g.Contains(e) {
			t.Fatal("false negative after snapshot round trip")
		}
	}
	// Probe agreement on non-members too: identical bit state means
	// identical (possibly false-positive) answers.
	for _, e := range genElements(5000, 24) {
		if f.Contains(e) != g.Contains(e) {
			t.Fatal("decoded filter disagrees with original on a probe")
		}
	}
	if err := g.UnmarshalBinary(blob[:10]); err == nil {
		t.Fatal("decoded a truncated snapshot")
	}
}
