package workload

import (
	"bytes"
	"testing"

	"shbf/internal/trace"
)

func TestNegativesDisjointFromPriorDraws(t *testing.T) {
	g := trace.NewGenerator(1)
	members := trace.Bytes(g.Distinct(1000))
	negs := Negatives(g, 1000)
	seen := map[string]bool{}
	for _, m := range members {
		seen[string(m)] = true
	}
	for _, n := range negs {
		if seen[string(n)] {
			t.Fatal("negative collides with member")
		}
	}
	if len(negs) != 1000 {
		t.Fatalf("got %d negatives", len(negs))
	}
}

func TestMixedContainsEverythingOnce(t *testing.T) {
	g := trace.NewGenerator(2)
	members := trace.Bytes(g.Distinct(500))
	negs := Negatives(g, 500)
	mix := Mixed(members, negs, 42)
	if len(mix) != 1000 {
		t.Fatalf("mix has %d entries", len(mix))
	}
	counts := map[string]int{}
	for _, e := range mix {
		counts[string(e)]++
	}
	if len(counts) != 1000 {
		t.Fatalf("mix has %d distinct entries, want 1000", len(counts))
	}
	// Shuffled: first half must not be exactly the members in order.
	inOrder := true
	for i := 0; i < 500; i++ {
		if !bytes.Equal(mix[i], members[i]) {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("Mixed did not shuffle")
	}
}

func TestMixedDeterministic(t *testing.T) {
	g1 := trace.NewGenerator(3)
	m1 := trace.Bytes(g1.Distinct(100))
	n1 := Negatives(g1, 100)
	g2 := trace.NewGenerator(3)
	m2 := trace.Bytes(g2.Distinct(100))
	n2 := Negatives(g2, 100)
	a := Mixed(m1, n1, 7)
	b := Mixed(m2, n2, 7)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatal("same-seed Mixed differs")
		}
	}
}

func TestInterleave(t *testing.T) {
	g := trace.NewGenerator(4)
	a := trace.Bytes(g.Distinct(100))
	b := trace.Bytes(g.Distinct(100))
	c := trace.Bytes(g.Distinct(100))
	all := Interleave(9, a, b, c)
	if len(all) != 300 {
		t.Fatalf("got %d", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		seen[string(e)] = true
	}
	if len(seen) != 300 {
		t.Fatal("Interleave lost or duplicated elements")
	}
}

func TestRepeat(t *testing.T) {
	g := trace.NewGenerator(5)
	q := trace.Bytes(g.Distinct(10))
	long := Repeat(q, 25)
	if len(long) != 25 {
		t.Fatalf("got %d", len(long))
	}
	for i, e := range long {
		if !bytes.Equal(e, q[i%10]) {
			t.Fatalf("entry %d does not cycle", i)
		}
	}
	short := Repeat(q, 4)
	if len(short) != 4 {
		t.Fatalf("truncation got %d", len(short))
	}
}
