package experiment

import (
	"math"
	"time"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 for fewer than
// two values).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// Repeat runs f trials times (trial index as seed offset) and returns
// the mean of its results.
func Repeat(trials int, f func(trial int) float64) float64 {
	if trials < 1 {
		trials = 1
	}
	vals := make([]float64, trials)
	for i := range vals {
		vals[i] = f(i)
	}
	return Mean(vals)
}

// MeasureMqps times query over the workload until at least minTime has
// elapsed (always completing whole passes so every query is represented
// equally) and returns millions of queries per second — the paper's
// throughput unit (Figures 9, 10(c), 11(c)).
func MeasureMqps(queries [][]byte, minTime time.Duration, query func(e []byte)) float64 {
	if len(queries) == 0 {
		return 0
	}
	// Warm-up pass: touch all memory, stabilize branch predictors.
	for _, q := range queries {
		query(q)
	}
	start := time.Now()
	n := 0
	for time.Since(start) < minTime {
		for _, q := range queries {
			query(q)
		}
		n += len(queries)
	}
	elapsed := time.Since(start).Seconds()
	return float64(n) / elapsed / 1e6
}
