package core

import (
	"fmt"

	"shbf/internal/bitvec"
	"shbf/internal/counters"
	"shbf/internal/hashing"
	"shbf/internal/hashtable"
	"shbf/internal/memmodel"
)

// CountingAssociation is CShBF_A (paper Section 4.3): a dynamically
// updatable ShBF_A. It maintains the membership hash tables T1 and T2
// (off-chip, as in the construction phase of Section 4.1), an array C of
// counters, and the query-side bit array B, synchronized after every
// update.
//
// The paper describes inserts/deletes as "after querying T1 and T2 and
// determining whether o(e) = 0, o1(e), or o2(e), increment/decrement the
// corresponding k counters". When an update moves an element between
// regions — e.g. inserting into S2 an element already in S1 moves it
// from S1−S2 to S1∩S2 — the old region's encoding must be removed and
// the new one added; CountingAssociation completes the paper's sketch
// with exactly that re-encoding.
type CountingAssociation struct {
	bits      *bitvec.Vector
	counts    *counters.Array
	t1, t2    *hashtable.Table
	m         int
	k         int
	wbar      int
	halfRange int
	fam       *hashing.Family
	seed      uint64
}

// NewCountingAssociation returns an empty updatable association filter.
func NewCountingAssociation(m, k int, opts ...Option) (*CountingAssociation, error) {
	cfg, err := buildConfig(KindCountingAssociation, opts)
	if err != nil {
		return nil, err
	}
	if m <= 0 {
		return nil, fmt.Errorf("core: m = %d must be positive", m)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k = %d must be ≥ 1", k)
	}
	if cfg.maxOffset < 3 || cfg.maxOffset > 64 {
		return nil, fmt.Errorf("core: max offset w̄ = %d out of range [3,64]", cfg.maxOffset)
	}
	total := m + cfg.maxOffset - 1
	a := &CountingAssociation{
		bits:      bitvec.New(total),
		counts:    counters.New(total, cfg.counterWidth),
		t1:        hashtable.New(cfg.seed + 1),
		t2:        hashtable.New(cfg.seed + 2),
		m:         m,
		k:         k,
		wbar:      cfg.maxOffset,
		halfRange: (cfg.maxOffset - 1) / 2,
		fam:       hashing.NewFamily(k+2, cfg.seed),
		seed:      cfg.seed,
	}
	a.bits.SetCounter(cfg.counter)
	return a, nil
}

// SetUpdateCounter attaches a memory-access counter to the off-chip
// counter array C.
func (a *CountingAssociation) SetUpdateCounter(mc *memmodel.Counter) {
	a.counts.SetCounter(mc)
}

// N1, N2 report the current distinct sizes of S1 and S2.
func (a *CountingAssociation) N1() int { return a.t1.Len() }
func (a *CountingAssociation) N2() int { return a.t2.Len() }

// InsertS1 adds e to S1 (no-op if already present), re-encoding e's
// region if it changed. ErrCounterSaturated is returned if a counter
// would overflow; the filter is left unchanged in that case.
func (a *CountingAssociation) InsertS1(e []byte) error {
	return a.InsertS1Digest(e, a.fam.Digest(e))
}

// InsertS1Digest is InsertS1 for a caller that already digested e
// (the sharded layer, which routed on the digest). d must be e's
// hashing.KeyDigest; the raw key is still needed for the membership
// tables.
func (a *CountingAssociation) InsertS1Digest(e []byte, d hashing.Digest) error {
	if a.t1.Contains(e) {
		return nil
	}
	return a.transition(e, d, func() { a.t1.Put(e, 1) })
}

// InsertS2 adds e to S2 (no-op if already present).
func (a *CountingAssociation) InsertS2(e []byte) error {
	return a.InsertS2Digest(e, a.fam.Digest(e))
}

// InsertS2Digest is InsertS2 for an already digested key.
func (a *CountingAssociation) InsertS2Digest(e []byte, d hashing.Digest) error {
	if a.t2.Contains(e) {
		return nil
	}
	return a.transition(e, d, func() { a.t2.Put(e, 1) })
}

// DeleteS1 removes e from S1, returning ErrNotStored if absent.
func (a *CountingAssociation) DeleteS1(e []byte) error {
	return a.DeleteS1Digest(e, a.fam.Digest(e))
}

// DeleteS1Digest is DeleteS1 for an already digested key.
func (a *CountingAssociation) DeleteS1Digest(e []byte, d hashing.Digest) error {
	if !a.t1.Contains(e) {
		return ErrNotStored
	}
	return a.transition(e, d, func() { a.t1.Delete(e) })
}

// DeleteS2 removes e from S2, returning ErrNotStored if absent.
func (a *CountingAssociation) DeleteS2(e []byte) error {
	return a.DeleteS2Digest(e, a.fam.Digest(e))
}

// DeleteS2Digest is DeleteS2 for an already digested key.
func (a *CountingAssociation) DeleteS2Digest(e []byte, d hashing.Digest) error {
	if !a.t2.Contains(e) {
		return ErrNotStored
	}
	return a.transition(e, d, func() { a.t2.Delete(e) })
}

// transition applies the set mutation, then re-encodes e if its region
// changed: decrement the old offset's k counters (clearing bits that
// reach zero) and increment the new offset's (setting bits). All
// positions derive from the single digest d.
func (a *CountingAssociation) transition(e []byte, d hashing.Digest, mutate func()) error {
	oldRegion := a.truthRegion(e)
	mutate()
	newRegion := a.truthRegion(e)
	if oldRegion == newRegion {
		return nil
	}
	if newRegion != RegionNone {
		o := a.offsetFor(d, newRegion)
		// Check saturation up front so failures leave state untouched
		// (aside from the set-table mutation, which the caller observes
		// via the error and can undo; encoding and tables stay in sync
		// for all other elements).
		for i := 0; i < a.k; i++ {
			p := a.fam.ModFromDigest(i, d, a.m) + o
			if a.counts.Peek(p) == a.counts.Max() {
				return ErrCounterSaturated
			}
		}
		for i := 0; i < a.k; i++ {
			p := a.fam.ModFromDigest(i, d, a.m) + o
			a.counts.Inc(p)
			a.bits.Set(p)
		}
	}
	if oldRegion != RegionNone {
		o := a.offsetFor(d, oldRegion)
		for i := 0; i < a.k; i++ {
			p := a.fam.ModFromDigest(i, d, a.m) + o
			if v, ok := a.counts.Dec(p); ok && v == 0 {
				a.bits.Clear(p)
			}
		}
	}
	return nil
}

// truthRegion derives e's atomic region from the backing tables.
func (a *CountingAssociation) truthRegion(e []byte) Region {
	in1, in2 := a.t1.Contains(e), a.t2.Contains(e)
	switch {
	case in1 && in2:
		return RegionBoth
	case in1:
		return RegionS1Only
	case in2:
		return RegionS2Only
	default:
		return RegionNone
	}
}

// offsetFor maps an atomic region to its encoding offset for the
// element digested as d.
func (a *CountingAssociation) offsetFor(d hashing.Digest, r Region) int {
	switch r {
	case RegionS1Only:
		return 0
	case RegionBoth:
		return a.offset1(d)
	default: // RegionS2Only
		return a.offset2(d)
	}
}

func (a *CountingAssociation) offset1(d hashing.Digest) int {
	return hashing.Reduce(a.fam.FromDigest(a.k, d), a.halfRange) + 1
}

func (a *CountingAssociation) offset2(d hashing.Digest) int {
	return a.offset1(d) + hashing.Reduce(a.fam.FromDigest(a.k+1, d), a.halfRange) + 1
}

// Query returns the candidate-region mask for e from the bit array B,
// with the same semantics as Association.Query.
func (a *CountingAssociation) Query(e []byte) Region {
	return a.QueryDigest(a.fam.Digest(e))
}

// QueryDigest answers Query for the element whose digest is d.
func (a *CountingAssociation) QueryDigest(d hashing.Digest) Region {
	o1 := a.offset1(d)
	o2 := o1 + hashing.Reduce(a.fam.FromDigest(a.k+1, d), a.halfRange) + 1

	cand := RegionS1Only | RegionBoth | RegionS2Only
	for i := 0; i < a.k && cand != RegionNone; i++ {
		win := a.bits.Window(a.fam.ModFromDigest(i, d, a.m), a.wbar)
		// Branchless pruning; see Association.Query.
		survived := Region(win&1) |
			Region(win>>uint(o1)&1)<<1 |
			Region(win>>uint(o2)&1)<<2
		cand &= survived
	}
	return cand
}
