package main

// serve.go implements the -serve mode: a serving-layer benchmark that
// measures end-to-end batch throughput against an in-process shbfd
// core over both transports — ShBP (the binary batch protocol) and the
// v2 HTTP/JSON API — at 16/256/4096-key batches of 13-byte 5-tuple
// flow IDs, using the shipped shbf/client for both. Results go to a
// machine-readable JSON file (BENCH_PR5.json by default).
//
// Methodology: every (op, batch, transport) case is measured with
// testing.Benchmark and the suite is run serveRuns times with the
// cases interleaved — transport A and B alternate within each run, and
// the minimum per case across runs is reported. Interleaved min-of-N
// is the noise rule for wall-clock comparisons on shared machines
// (scheduler preemption and frequency excursions only ever add time,
// and interleaving keeps slow drift from loading one side of the
// comparison).
//
// With -serve-min-speedup > 0, the run exits nonzero unless ShBP
// Contains at 256 keys achieves at least that multiple of the JSON
// path's keys/sec — CI's regression gate for the binary protocol's
// reason to exist.
//
// The suite also runs an A/B overhead measurement for the metrics
// layer: a second, identically preloaded daemon with Config.NoMetrics
// set serves the same ShBP Contains@256 case (interleaved with the
// instrumented one), and the report records the instrumented/bare
// keys-per-second ratio. With -serve-max-metrics-overhead > 0 the run
// exits nonzero if instrumentation costs more than that fraction of
// throughput — CI's proof that the per-frame counters stay in the
// "two array loads plus atomic adds" budget.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"

	"shbf/client"
	"shbf/internal/flowkeys"
	"shbf/internal/server"
)

// serveRuns is the interleaved repetition count (min per case wins).
const serveRuns = 3

// serveBatches are the request batch sizes measured.
var serveBatches = []int{16, 256, 4096}

// serveResult is one (op, batch, transport) measurement.
type serveResult struct {
	Name        string  `json:"name"`
	Transport   string  `json:"transport"` // shbp | json
	Op          string  `json:"op"`        // ContainsAll | AddAll
	Batch       int     `json:"batch"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerKey    float64 `json:"ns_per_key"`
	KeysPerSec  float64 `json:"keys_per_sec"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// serveComparison is the per-(op, batch) ShBP-vs-JSON rollup.
type serveComparison struct {
	Op      string  `json:"op"`
	Batch   int     `json:"batch"`
	Speedup float64 `json:"shbp_vs_json_keys_per_sec"`
}

// serveReport is the BENCH_PR5.json document.
type serveReport struct {
	Schema      string            `json:"schema"`
	GeneratedAt string            `json:"generated_at"`
	GoVersion   string            `json:"go_version"`
	GOOS        string            `json:"goos"`
	GOARCH      string            `json:"goarch"`
	CPUs        int               `json:"cpus"`
	KeyBytes    int               `json:"key_bytes"`
	Runs        int               `json:"runs"`
	Note        string            `json:"note"`
	Results     []serveResult     `json:"results"`
	Comparisons []serveComparison `json:"comparisons"`
	// MetricsOverheadRatio is instrumented ÷ NoMetrics keys/sec for
	// ShBP ContainsAll@256 (1.0 = free; 0.95 = 5% tax).
	MetricsOverheadRatio float64 `json:"metrics_overhead_ratio"`
}

// runServe measures the suite and writes the report; minSpeedup > 0
// additionally gates ShBP Contains @256 keys, and maxOverhead > 0
// gates the metrics layer's throughput tax on the same case.
func runServe(outPath, note string, minSpeedup, maxOverhead float64) error {
	cfg := server.DefaultConfig()
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	// Both transports on loopback TCP, so the measurement includes the
	// real network stack both ways.
	shbpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.ServeShBP(ctx, shbpLn)
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(httpLn)
	defer httpSrv.Close()

	shbpC, err := client.Dial("shbp://" + shbpLn.Addr().String())
	if err != nil {
		return err
	}
	defer shbpC.Close()
	jsonC, err := client.Dial("http://" + httpLn.Addr().String())
	if err != nil {
		return err
	}
	defer jsonC.Close()

	// The A/B twin: same config with the metrics layer compiled out of
	// the dispatch path, its own listener and connection, preloaded with
	// the identical member set. Interleaving its ContainsAll@256 case
	// with the instrumented one isolates the counters' cost.
	bareCfg := server.DefaultConfig()
	bareCfg.NoMetrics = true
	bareSrv, err := server.New(bareCfg)
	if err != nil {
		return err
	}
	bareLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go bareSrv.ServeShBP(ctx, bareLn)
	bareC, err := client.Dial("shbp://" + bareLn.Addr().String())
	if err != nil {
		return err
	}
	defer bareC.Close()

	// Workload: 64k member flow IDs preloaded through ShBP; queries
	// probe a 50/50 member/non-member mix. One deterministic pool
	// provides disjoint member, probe and add-load slices.
	const nMembers = 1 << 16
	_, pool := flowkeys.Keys(3 * nMembers)
	members := pool[:nMembers]
	if err := shbpC.Namespace("").Set().AddAll(members); err != nil {
		return err
	}
	if err := bareC.Namespace("").Set().AddAll(members); err != nil {
		return err
	}
	probes := append([][]byte{}, pool[nMembers:2*nMembers]...)
	for i := 0; i < len(probes); i += 2 {
		probes[i] = members[i]
	}
	addPool := pool[2*nMembers:]

	type benchCase struct {
		transport string
		op        string
		batch     int
		body      func(b *testing.B)
	}
	// Cases are ordered so a (op, batch) pair's two transports run
	// back to back — the interleaving that keeps slow thermal or
	// frequency drift from loading one side of the comparison.
	transports := []struct {
		name string
		set  *client.Set
	}{
		{"shbp", shbpC.Namespace("").Set()},
		{"json", jsonC.Namespace("").Set()},
	}
	var cases []benchCase
	for _, batch := range serveBatches {
		batch := batch
		query := probes[:batch]
		add := addPool[:batch] // re-adding the same batch is idempotent load
		for _, tr := range transports {
			set := tr.set
			cases = append(cases, benchCase{tr.name, "ContainsAll", batch, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := set.Check(query); err != nil {
						b.Fatal(err)
					}
				}
			}})
		}
		if batch == 256 {
			// The metrics A/B rider: the NoMetrics daemon's copy of the
			// gated case, adjacent to the instrumented pair so both sides
			// see the same thermal/scheduler weather.
			set := bareC.Namespace("").Set()
			cases = append(cases, benchCase{"shbp-nometrics", "ContainsAll", batch, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := set.Check(query); err != nil {
						b.Fatal(err)
					}
				}
			}})
		}
		for _, tr := range transports {
			set := tr.set
			cases = append(cases, benchCase{tr.name, "AddAll", batch, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := set.AddAll(add); err != nil {
						b.Fatal(err)
					}
				}
			}})
		}
	}

	// Interleaved min-of-N: whole-suite passes, each case's transport
	// pair adjacent within a pass; keep each case's fastest run.
	best := make([]testing.BenchmarkResult, len(cases))
	for run := 0; run < serveRuns; run++ {
		for i, c := range cases {
			r := testing.Benchmark(c.body)
			if run == 0 || r.NsPerOp() < best[i].NsPerOp() {
				best[i] = r
			}
		}
	}

	report := serveReport{
		Schema:      "shbf-serve-bench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		KeyBytes:    flowkeys.KeyBytes,
		Runs:        serveRuns,
		Note:        note,
	}
	keysPerSec := map[string]float64{}
	for i, c := range cases {
		r := best[i]
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		res := serveResult{
			Name:        fmt.Sprintf("%s/%s/%d", c.transport, c.op, c.batch),
			Transport:   c.transport,
			Op:          c.op,
			Batch:       c.batch,
			NsPerOp:     ns,
			NsPerKey:    ns / float64(c.batch),
			KeysPerSec:  float64(c.batch) / (ns / 1e9),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		}
		report.Results = append(report.Results, res)
		keysPerSec[res.Name] = res.KeysPerSec
	}
	for _, op := range []string{"ContainsAll", "AddAll"} {
		for _, batch := range serveBatches {
			jk := keysPerSec[fmt.Sprintf("json/%s/%d", op, batch)]
			sk := keysPerSec[fmt.Sprintf("shbp/%s/%d", op, batch)]
			if jk > 0 {
				report.Comparisons = append(report.Comparisons,
					serveComparison{Op: op, Batch: batch, Speedup: sk / jk})
			}
		}
	}
	if bare := keysPerSec["shbp-nometrics/ContainsAll/256"]; bare > 0 {
		report.MetricsOverheadRatio = keysPerSec["shbp/ContainsAll/256"] / bare
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("serve bench → %s\n", outPath)
	for _, res := range report.Results {
		fmt.Printf("  %-26s %10.0f keys/s  %7.1f ns/key  %5d B/op %4d allocs/op\n",
			res.Name, res.KeysPerSec, res.NsPerKey, res.BytesPerOp, res.AllocsPerOp)
	}
	for _, cmp := range report.Comparisons {
		fmt.Printf("  shbp vs json %-12s @%-5d %.2f×\n", cmp.Op, cmp.Batch, cmp.Speedup)
	}
	fmt.Printf("  metrics overhead (instrumented/bare Contains@256): %.3f\n",
		report.MetricsOverheadRatio)

	if minSpeedup > 0 {
		gate := keysPerSec["shbp/ContainsAll/256"] / keysPerSec["json/ContainsAll/256"]
		if gate < minSpeedup {
			return fmt.Errorf("ShBP Contains@256 is %.2f× JSON, below the %.1f× gate", gate, minSpeedup)
		}
		fmt.Printf("gate: ShBP Contains@256 = %.2f× JSON (≥ %.1f×) ok\n", gate, minSpeedup)
	}
	if maxOverhead > 0 {
		floor := 1 - maxOverhead
		if report.MetricsOverheadRatio < floor {
			return fmt.Errorf("metrics overhead: instrumented Contains@256 is %.3f× the bare daemon, below the %.3f floor",
				report.MetricsOverheadRatio, floor)
		}
		fmt.Printf("gate: metrics overhead %.3f (≥ %.3f) ok\n", report.MetricsOverheadRatio, floor)
	}
	return nil
}
