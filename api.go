package shbf

import (
	"fmt"

	"shbf/internal/core"
	"shbf/internal/sharded"
)

// This file is the unified, spec-driven construction surface: a Kind
// for every filter the framework instantiates, a Spec capturing full
// construction geometry, one New entry point dispatching over both,
// and the small interfaces every filter kind presents. The typed
// constructors in shbf.go remain as thin wrappers for callers that
// want concrete types.

// Kind identifies one instantiation of the shifting Bloom filter
// framework; see the Kind* constants.
type Kind = core.Kind

// The framework's filter kinds, accepted by [New] in [Spec].Kind.
const (
	KindMembership           = core.KindMembership
	KindCountingMembership   = core.KindCountingMembership
	KindTShift               = core.KindTShift
	KindAssociation          = core.KindAssociation
	KindCountingAssociation  = core.KindCountingAssociation
	KindMultiAssociation     = core.KindMultiAssociation
	KindMultiplicity         = core.KindMultiplicity
	KindCountingMultiplicity = core.KindCountingMultiplicity
	KindSCMSketch            = core.KindSCMSketch
	KindShardedMembership    = core.KindShardedMembership
	KindShardedAssociation   = core.KindShardedAssociation
	KindShardedMultiplicity  = core.KindShardedMultiplicity
)

// ParseKind maps a canonical kind name (a Kind's String form, e.g.
// "counting-multiplicity") to its Kind.
func ParseKind(name string) (Kind, error) { return core.ParseKind(name) }

// Spec is a filter's complete construction geometry: the kind plus
// every parameter it needs, the single currency of [New], the sizing
// planners, and every built filter's Spec method.
type Spec = core.Spec

// Stats is the uniform occupancy snapshot every filter reports.
type Stats = core.Stats

// Filter is the interface every filter kind implements: it can name
// its kind, report the Spec that reconstructs its empty twin, snapshot
// its occupancy, and serialize itself. [Load] and [Dump] round-trip
// any Filter through the self-describing envelope.
type Filter interface {
	Kind() Kind
	Spec() Spec
	Stats() Stats
	MarshalBinary() ([]byte, error)
}

// Set is the static membership surface, scalar and batch: Membership,
// TShift and ShardedMembership implement it. (CountingMembership
// inserts fallibly and is Updatable instead; it still has Contains,
// ContainsAll and AddAll.)
type Set interface {
	Add(e []byte)
	Contains(e []byte) bool
	AddAll(keys [][]byte) error
	ContainsAll(dst []bool, keys [][]byte) []bool
}

// Adder is the batch insertion surface shared by the membership kinds,
// the counting multiplicity kinds, and the SCM sketch (where AddAll
// increments each key once).
type Adder interface {
	AddAll(keys [][]byte) error
}

// Updatable is the dynamic-update surface of the counting kinds:
// CountingMembership, CountingMultiplicity and ShardedMultiplicity
// implement it. (The association kinds update per set via
// InsertS1/InsertS2 and are not Updatable.)
type Updatable interface {
	Insert(e []byte) error
	Delete(e []byte) error
}

// Counter is the multiplicity-query surface: Multiplicity,
// CountingMultiplicity and ShardedMultiplicity implement it.
type Counter interface {
	Count(e []byte) int
	CountAll(dst []int, keys [][]byte) []int
}

// Associator is the two-set association surface: Association,
// CountingAssociation and ShardedAssociation implement it.
// (MultiAssociation answers with a MultiAnswer, not a Region, and is
// queried directly.)
type Associator interface {
	Query(e []byte) Region
	QueryAll(dst []Region, keys [][]byte) []Region
}

// asFilter adapts a concrete constructor result to the Filter
// interface without wrapping a typed nil on error.
func asFilter[F Filter](f F, err error) (Filter, error) {
	if err != nil {
		return nil, err
	}
	return f, nil
}

// New constructs an empty filter of any kind from its Spec — the
// single entry point behind which all twelve constructors sit.
// Spec fields that do not apply to the requested kind are rejected
// with an error rather than silently ignored, as are options that the
// kind's constructor does not consume. The association kinds are
// constructed empty; use the typed [BuildAssociation] and
// [BuildMultiAssociation] to encode static sets at build time, or the
// counting/sharded association kinds for dynamic updates.
func New(spec Spec) (Filter, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	opts := spec.Options()
	switch spec.Kind {
	case KindMembership:
		return asFilter(core.NewMembership(spec.M, spec.K, opts...))
	case KindCountingMembership:
		return asFilter(core.NewCountingMembership(spec.M, spec.K, opts...))
	case KindTShift:
		return asFilter(core.NewTShift(spec.M, spec.K, spec.T, opts...))
	case KindAssociation:
		return asFilter(core.BuildAssociation(nil, nil, spec.M, spec.K, opts...))
	case KindCountingAssociation:
		return asFilter(core.NewCountingAssociation(spec.M, spec.K, opts...))
	case KindMultiAssociation:
		return asFilter(core.BuildMultiAssociation(make([][][]byte, spec.G), spec.M, spec.K, opts...))
	case KindMultiplicity:
		return asFilter(core.NewMultiplicity(spec.M, spec.K, spec.C, opts...))
	case KindCountingMultiplicity:
		return asFilter(core.NewCountingMultiplicity(spec.M, spec.K, spec.C, opts...))
	case KindSCMSketch:
		// Spec maps the sketch geometry onto (M, K) = (r, d).
		return asFilter(core.NewSCMSketch(spec.K, spec.M, opts...))
	case KindShardedMembership:
		return asFilter(sharded.New(spec.M, spec.K, spec.Shards, opts...))
	case KindShardedAssociation:
		return asFilter(sharded.NewAssociation(spec.M, spec.K, spec.Shards, opts...))
	case KindShardedMultiplicity:
		return asFilter(sharded.NewMultiplicity(spec.M, spec.K, spec.C, spec.Shards, opts...))
	}
	return nil, fmt.Errorf("shbf: unknown filter kind %s", spec.Kind)
}
