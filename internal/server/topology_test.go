package server

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"shbf"
	"shbf/internal/ingest"
)

// manglingConn injects deterministic transport faults in front of a
// real UDP socket: per-write-index drops and duplicates, plus pairwise
// reordering (datagrams 0,1 are written 1,0; 2,3 as 3,2; …). The
// pattern is index-based, not random, so every assertion downstream is
// exact and the test cannot flake on its own injection.
type manglingConn struct {
	conn net.Conn
	drop func(i int) bool
	dup  func(i int) bool
	swap bool

	mu      sync.Mutex
	n       int
	dropped []int  // write indices dropped in flight
	pending []byte // held datagram awaiting its swap partner
	pendIdx int
}

func (m *manglingConn) Write(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	i := m.n
	m.n++
	if m.drop != nil && m.drop(i) {
		m.dropped = append(m.dropped, i)
		return len(p), nil
	}
	send := func(b []byte) error {
		_, err := m.conn.Write(b)
		return err
	}
	if m.swap {
		if m.pending == nil {
			m.pending = append([]byte(nil), p...)
			m.pendIdx = i
			return len(p), nil
		}
		held := m.pending
		m.pending = nil
		if err := send(p); err != nil {
			return 0, err
		}
		if err := send(held); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	if err := send(p); err != nil {
		return 0, err
	}
	if m.dup != nil && m.dup(i) {
		if err := send(p); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// release writes any datagram still held for reordering.
func (m *manglingConn) release() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pending == nil {
		return nil
	}
	_, err := m.conn.Write(m.pending)
	m.pending = nil
	return err
}

func dialUDP(t *testing.T, addr net.Addr) net.Conn {
	t.Helper()
	c, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func listenUDP(t *testing.T) net.PacketConn {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	return pc
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTopologyAgentForwarderDaemon runs the full aggregation topology
// over real loopback UDP: a keys-mode leaf and an envelope-mode leaf
// send to a forwarding agent — through injected drops, duplicates and
// reorders — and the forwarder ships its merged state to a daemon.
// Asserts: no false negatives for any key the daemon acked, loss
// accounting exactly matching the injected drops, and the daemon's
// merged filter byte-identical to a same-Spec filter built locally
// from the surviving keys.
func TestTopologyAgentForwarderDaemon(t *testing.T) {
	cfg := testConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	daemonPC := listenUDP(t)
	go s.ServeShBU(daemonPC)

	memSpec, _, _ := cfg.Specs()
	newMemFilter := func() shbf.Filter {
		f, err := shbf.New(memSpec)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	// Forwarder: envelope-mode agent whose local filter matches the
	// daemon's membership geometry, fed by its own UDP listener.
	fwdPC := listenUDP(t)
	fwdAgent, err := ingest.NewAgent(dialUDP(t, daemonPC.LocalAddr()), ingest.AgentConfig{
		Namespace: DefaultNamespace, Source: 100, Mode: ingest.ModeEnvelope,
		Filter: newMemFilter(),
	})
	if err != nil {
		t.Fatal(err)
	}
	fwdRecv := ingest.NewReceiver(ingest.NewForwarder(fwdAgent))
	go func() {
		buf := make([]byte, ingest.MaxDatagram)
		for {
			n, _, err := fwdPC.ReadFrom(buf)
			if err != nil {
				return
			}
			fwdRecv.Process(buf[:n])
		}
	}()

	// Leaf 1: keys mode, one datagram per flush, through drops and
	// pairwise reordering. Groups of 20 keys fit one datagram, so
	// write index ↔ key group exactly.
	const groups, groupSize = 15, 20
	leaf1Conn := &manglingConn{
		conn: dialUDP(t, fwdPC.LocalAddr()),
		drop: func(i int) bool { return i%7 == 3 },
		swap: true,
	}
	leaf1, err := ingest.NewAgent(leaf1Conn, ingest.AgentConfig{
		Namespace: DefaultNamespace, Source: 1, Mode: ingest.ModeKeys,
	})
	if err != nil {
		t.Fatal(err)
	}
	allKeys := udpKeys("topo-leaf1", groups*groupSize)
	for g := 0; g < groups; g++ {
		if err := leaf1.AddAll(allKeys[g*groupSize : (g+1)*groupSize]); err != nil {
			t.Fatal(err)
		}
		if err := leaf1.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := leaf1Conn.release(); err != nil {
		t.Fatal(err)
	}
	if st := leaf1.Stats(); st.DatagramsSent != groups {
		t.Fatalf("leaf1 sent %d datagrams, want one per group (%d)", st.DatagramsSent, groups)
	}
	droppedGroup := map[int]bool{}
	for _, i := range leaf1Conn.dropped {
		droppedGroup[i] = true
	}
	var survivors [][]byte
	for g := 0; g < groups; g++ {
		if !droppedGroup[g] {
			survivors = append(survivors, allKeys[g*groupSize:(g+1)*groupSize]...)
		}
	}

	// Leaf 2: envelope mode, same Spec, every third datagram duplicated.
	leaf2Conn := &manglingConn{
		conn: dialUDP(t, fwdPC.LocalAddr()),
		dup:  func(i int) bool { return i%3 == 0 },
	}
	leaf2, err := ingest.NewAgent(leaf2Conn, ingest.AgentConfig{
		Namespace: DefaultNamespace, Source: 2, Mode: ingest.ModeEnvelope,
		Filter: newMemFilter(),
	})
	if err != nil {
		t.Fatal(err)
	}
	leaf2Keys := udpKeys("topo-leaf2", 500)
	if err := leaf2.AddAll(leaf2Keys); err != nil {
		t.Fatal(err)
	}
	if err := leaf2.Flush(); err != nil {
		t.Fatal(err)
	}
	survivors = append(survivors, leaf2Keys...)

	// Wait for every surviving datagram to reach the forwarder, then
	// check its accounting against the injected faults exactly.
	wantBatches := uint64(groups - len(leaf1Conn.dropped))
	leaf2Sent := uint64(leaf2.Stats().DatagramsSent)
	var dups uint64
	for i := 0; i < int(leaf2Sent); i++ {
		if leaf2Conn.dup(i) {
			dups++
		}
	}
	waitFor(t, "forwarder to absorb both leaves", func() bool {
		st := fwdRecv.Stats()
		return st.AppliedBatch == wantBatches && st.AppliedEnvelope == leaf2Sent &&
			st.Dropped[ingest.DropDuplicate] == dups
	})
	st := fwdRecv.Stats()
	// Loss: the receiver sees leaf1's sequence gaps (the last datagram
	// was not dropped — 14%7 ≠ 3 — so every gap is visible).
	if got, want := st.Lost, uint64(len(leaf1Conn.dropped)); got != want {
		t.Fatalf("forwarder lost = %d, injected drops = %d", got, want)
	}
	if st.Reordered == 0 {
		t.Fatal("pairwise swapped delivery registered no reorders")
	}
	if st.Dropped[ingest.DropDecode] != 0 {
		t.Fatalf("unexpected decode drops: %v", st.Dropped)
	}

	// Forwarder flush: one cumulative envelope to the daemon.
	if err := fwdAgent.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "daemon to merge the forwarded envelope", func() bool {
		return s.UDPStats().MergeBytes > 0
	})

	// No false negatives: every key the daemon acked into the filter —
	// all surviving leaf keys — answers present.
	ns, err := s.lookup(DefaultNamespace)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range survivors {
		if !ns.mem.(shbf.Set).Contains(k) {
			t.Fatalf("daemon-acked key %q answers absent", k)
		}
	}

	// Byte-equivalence: the daemon's filter is exactly a same-Spec
	// filter built locally from the surviving keys — aggregation added
	// nothing and lost nothing beyond the injected drops.
	local := newMemFilter()
	if err := local.(shbf.Set).AddAll(survivors); err != nil {
		t.Fatal(err)
	}
	wantDump, err := shbf.AppendDump(nil, local)
	if err != nil {
		t.Fatal(err)
	}
	gotDump, err := shbf.AppendDump(nil, ns.mem)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotDump, wantDump) {
		t.Fatal("daemon filter differs from the same-Spec locally-built filter")
	}
}
