package analytic

import "math"

// Sliding-window (generation-ring) accuracy. A window filter queries G
// independent generations and answers positively when any generation
// does, so for a key outside every generation the window false-positive
// events are independent across the ring:
//
//	f_window = 1 − (1 − f_gen)^G
//
// where f_gen is one generation's false-positive rate at its own load
// (for ShBF_M generations, Equation 1 at the per-tick element count).
// For small f_gen this is ≈ G·f_gen — the window pays a factor-of-G
// error tax for its bounded memory and forgetting, and because each
// generation holds only one tick's worth of keys, f_gen is evaluated
// at n/G-ish load rather than the stream's lifetime total. Both
// f_window and the memory G × m are constants of the configuration:
// unlike an unbounded append-only filter, neither drifts as the stream
// runs, which is the contract the soak tests and EXPERIMENTS.md's
// sliding-window section pin.

// FPRWindow returns the G-generation window false-positive rate
// 1 − (1 − fGen)^G for a per-generation rate fGen, computed as
// −expm1(G·log1p(−fGen)) so that rates below the float64 epsilon
// (lightly loaded shards report f_gen ~ 1e-19) degrade to the G·fGen
// linearization instead of underflowing to zero.
func FPRWindow(fGen float64, g int) float64 {
	if fGen <= 0 {
		return 0
	}
	if fGen >= 1 {
		return 1
	}
	return -math.Expm1(float64(g) * math.Log1p(-fGen))
}

// FPRShBFMWindow returns the window false-positive rate of a
// G-generation ring of ShBF_M filters, each of m bits holding nPerGen
// elements: FPRWindow over Equation 1.
func FPRShBFMWindow(m, nPerGen int, k float64, wbar, g int) float64 {
	return FPRWindow(FPRShBFM(m, nPerGen, k, wbar), g)
}
