package ingest

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func testKeys(n int, width int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		if width > 0 {
			k := make([]byte, width)
			k[0], k[1%width] = byte(i), byte(i>>8)
			keys[i] = k
		} else {
			keys[i] = []byte(fmt.Sprintf("key-%d", i))
		}
	}
	return keys
}

func TestDatagramRoundTrip(t *testing.T) {
	cases := map[string]*Datagram{
		"batch fixed width": {
			Type: TypeAddBatch, Source: 0xdeadbeef, Seq: 42,
			Namespace: "flows", KeyWidth: 13, Keys: testKeys(50, 13),
		},
		"batch variable width": {
			Type: TypeAddBatch, Source: 1, Seq: 1,
			Namespace: "default", Keys: testKeys(20, 0),
		},
		"batch empty": {
			Type: TypeAddBatch, Source: 7, Seq: 9, Namespace: "x",
		},
		"fragment middle": {
			Type: TypeEnvelopeFrag, Source: 3, Seq: 77, Namespace: "agg",
			FlushID: 5, FragIndex: 2, FragCount: 4, EnvLen: 4000,
			FragOffset: 2000, Frag: bytes.Repeat([]byte{0xab}, 1000),
		},
		"fragment single": {
			Type: TypeEnvelopeFrag, Source: 3, Seq: 78, Namespace: "agg",
			FlushID: 6, FragIndex: 0, FragCount: 1, EnvLen: 100,
			FragOffset: 0, Frag: bytes.Repeat([]byte{1}, 100),
		},
	}
	for name, d := range cases {
		t.Run(name, func(t *testing.T) {
			buf, err := Append(nil, d)
			if err != nil {
				t.Fatalf("Append: %v", err)
			}
			got, err := Decode(buf)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if got.Type != d.Type || got.Source != d.Source || got.Seq != d.Seq || got.Namespace != d.Namespace {
				t.Fatalf("header mismatch: %+v vs %+v", got, d)
			}
			if d.Type == TypeAddBatch {
				if len(got.Keys) != len(d.Keys) || got.KeyWidth != d.KeyWidth {
					t.Fatalf("got %d keys width %d, want %d width %d", len(got.Keys), got.KeyWidth, len(d.Keys), d.KeyWidth)
				}
				for i := range d.Keys {
					if !bytes.Equal(got.Keys[i], d.Keys[i]) {
						t.Fatalf("key %d mismatch", i)
					}
				}
			} else {
				if got.FlushID != d.FlushID || got.FragIndex != d.FragIndex ||
					got.FragCount != d.FragCount || got.EnvLen != d.EnvLen ||
					got.FragOffset != d.FragOffset || !bytes.Equal(got.Frag, d.Frag) {
					t.Fatalf("fragment mismatch: %+v vs %+v", got, d)
				}
			}
			// Re-encoding the decoded datagram must reproduce the bytes
			// (the fuzz target's round-trip invariant).
			again, err := Append(nil, got)
			if err != nil {
				t.Fatalf("re-Append: %v", err)
			}
			if !bytes.Equal(again, buf) {
				t.Fatal("re-encoded datagram differs")
			}
		})
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good, err := Append(nil, &Datagram{
		Type: TypeAddBatch, Source: 1, Seq: 1, Namespace: "ns",
		KeyWidth: 4, Keys: testKeys(10, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	frag, err := Append(nil, &Datagram{
		Type: TypeEnvelopeFrag, Source: 1, Seq: 2, Namespace: "ns",
		FlushID: 1, FragIndex: 0, FragCount: 2, EnvLen: 600,
		FragOffset: 0, Frag: make([]byte, 300),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every truncation of a valid datagram must be rejected, never
	// panic and never decode successfully.
	for _, base := range [][]byte{good, frag} {
		for n := 0; n < len(base); n++ {
			if _, err := Decode(base[:n]); err == nil {
				t.Fatalf("truncation to %d of %d bytes accepted", n, len(base))
			} else if !errors.Is(err, ErrBadDatagram) {
				t.Fatalf("truncation to %d: error %v not tagged ErrBadDatagram", n, err)
			}
		}
	}

	mutate := func(base []byte, i int, v byte) []byte {
		out := append([]byte(nil), base...)
		out[i] = v
		return out
	}
	bad := map[string][]byte{
		"bad magic":        mutate(good, 0, 'X'),
		"bad version":      mutate(good, 4, 99),
		"bad type":         mutate(good, 5, 7),
		"reserved nonzero": mutate(good, 7, 1),
		"trailing bytes":   append(append([]byte(nil), good...), 0xff),
		"oversized":        make([]byte, MaxDatagram+1),
		"frag index >= count": func() []byte {
			out := append([]byte(nil), frag...)
			// fragIndex lives at headerLen+2 ("ns")+8
			out[headerLen+2+8] = 5
			return out
		}(),
	}
	for name, data := range bad {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestAppendRejectsInvalid(t *testing.T) {
	cases := map[string]*Datagram{
		"unknown type":    {Type: 9, Namespace: "n"},
		"frag count zero": {Type: TypeEnvelopeFrag, Namespace: "n", FragCount: 0},
		"frag outside envelope": {
			Type: TypeEnvelopeFrag, Namespace: "n", FragIndex: 0, FragCount: 1,
			EnvLen: 10, FragOffset: 8, Frag: make([]byte, 8),
		},
		"oversized batch": {
			Type: TypeAddBatch, Namespace: "n", Keys: [][]byte{make([]byte, MaxDatagram)},
		},
	}
	for name, d := range cases {
		if buf, err := Append(nil, d); err == nil {
			t.Errorf("%s: accepted (%d bytes)", name, len(buf))
		}
	}
	// A failed Append must leave dst untouched.
	dst := []byte("prefix")
	out, err := Append(dst, &Datagram{Type: 9, Namespace: "n"})
	if err == nil || string(out) != "prefix" {
		t.Fatalf("failed Append returned %q, %v", out, err)
	}
}
