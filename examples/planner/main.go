// Capacity planning and filter shipping: size filters from accuracy
// targets using the paper's optima, build them from the resulting
// Specs with shbf.New, and ship them as self-describing envelopes to
// the query tier — the paper's build-offline / query-on-chip
// deployment (Section 3.3). The query tier loads the envelope without
// being told what kind of filter is inside.
//
// Run with: go run ./examples/planner
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"shbf"
)

func main() {
	const n = 250000

	// 1. Membership: "n flows, at most 0.1% false positives."
	mPlan, err := shbf.PlanMembership(n, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("membership plan for n=%d, FPR ≤ 0.1%%:\n", n)
	fmt.Printf("  m = %d bits (%.1f bits/element), k = %d, predicted FPR %.5f\n\n",
		mPlan.M, mPlan.BitsPerElem, mPlan.K, mPlan.PredictedFPR)

	// 2. Association: "clear routing decision 99.9% of the time."
	aPlan, err := shbf.PlanAssociation(n, 0.999)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("association plan for |S1∪S2|=%d, clear ≥ 99.9%%:\n", n)
	fmt.Printf("  m = %d bits, k = %d, predicted clear %.5f\n\n",
		aPlan.M, aPlan.K, aPlan.PredictedClear)

	// 3. Multiplicity: "flow sizes up to 57, ≥ 95%% exact answers even
	//    for absent flows."
	xPlan, err := shbf.PlanMultiplicity(n, 57, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multiplicity plan for n=%d, c=57, CR ≥ 95%%:\n", n)
	fmt.Printf("  m = %d bits (%.1f bits/element), k = %d, predicted CR %.5f\n\n",
		xPlan.M, xPlan.BitsPerElem, xPlan.K, xPlan.PredictedCR)

	// Build the membership filter straight from the plan's Spec.
	spec := mPlan.Spec()
	spec.Seed = 2016
	built, err := shbf.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	filter := built.(*shbf.Membership)
	rng := rand.New(rand.NewSource(1))
	sample := make([][]byte, 0, 1000)
	for i := 0; i < n; i++ {
		e := make([]byte, 13)
		rng.Read(e)
		e[4], e[5], e[6], e[7] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		filter.Add(e)
		if i < cap(sample) {
			sample = append(sample, e)
		}
	}

	// Ship it as a self-describing envelope: kind and geometry travel
	// in the bytes.
	var wire bytes.Buffer
	if err := shbf.Dump(&wire, filter); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shipped filter: %d bytes on the wire (%.2f bits/element)\n",
		wire.Len(), 8*float64(wire.Len())/n)

	// The query tier loads the envelope — no kind flag, the envelope
	// says what it is — and serves batch queries.
	loaded, err := shbf.Load(&wire)
	if err != nil {
		log.Fatal(err)
	}
	remote := loaded.(shbf.Set)
	for i, ok := range remote.ContainsAll(nil, sample) {
		if !ok {
			log.Fatalf("shipped filter lost element %d", i)
		}
	}
	fmt.Printf("query tier verified %d sampled members after decode (kind %s)\n",
		len(sample), loaded.Kind())
}
