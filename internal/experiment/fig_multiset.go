package experiment

import (
	"fmt"
	"math"

	"shbf/internal/analytic"
	"shbf/internal/baseline"
	"shbf/internal/core"
	"shbf/internal/memmodel"
	"shbf/internal/trace"
)

// RunMultiSetAblation evaluates the g-set extension of the framework
// against the Section 2.2 baselines: the Coded Bloom Filter and the
// straightforward one-BF-per-set (iBF generalized to g sets). Two
// questions, two figures:
//
//  1. Disjoint sets (the only regime CodedBF supports): probability of
//     a correct, unambiguous classification vs k, at equal total
//     memory.
//  2. Overlapping sets: fraction of shared elements misclassified.
//     CodedBF ORs codes together; MultiAssociation must stay at zero
//     unsound answers.
func RunMultiSetAblation(cfg Config) []*Figure {
	const g = 3
	n := cfg.AssocSetSize / 4
	if n < 1000 {
		n = 1000
	}

	clearFig := &Figure{ID: "multiset-clear", Title: fmt.Sprintf("%d disjoint sets: correct clear classification", g),
		XLabel: "k", YLabel: "P(correct clear answer)"}
	accFig := &Figure{ID: "multiset-acc", Title: fmt.Sprintf("%d disjoint sets: memory accesses per query", g),
		XLabel: "k", YLabel: "# memory accesses"}
	overlapFig := &Figure{ID: "multiset-overlap", Title: fmt.Sprintf("%d overlapping sets: unsound classifications", g),
		XLabel: "k", YLabel: "fraction misclassified"}

	for k := 6; k <= 14; k += 2 {
		var clearMulti, clearCoded, clearPerSet float64
		var accMulti, accCoded float64
		var wrongCoded, wrongMulti float64

		for trial := 0; trial < cfg.Trials; trial++ {
			gen := trace.NewGenerator(cfg.Seed + int64(trial))
			sets := make([][][]byte, g)
			for i := range sets {
				sets[i] = trace.Bytes(gen.Distinct(n))
			}
			totalN := g * n
			m := int(float64(totalN) * float64(k) / math.Ln2)
			seed := uint64(cfg.Seed) + uint64(trial)

			var mAcc, cAcc memmodel.Counter
			multi, err := core.BuildMultiAssociation(sets, m, k,
				core.WithSeed(seed), core.WithAccessCounter(&mAcc))
			if err != nil {
				panic(err)
			}
			coded, err := baseline.BuildCodedBF(sets, m, k,
				baseline.WithSeed(seed), baseline.WithAccessCounter(&cAcc))
			if err != nil {
				panic(err)
			}
			mAcc.Reset()
			cAcc.Reset()
			// One BF per set at the same total memory.
			perSet := make([]*baseline.BF, g)
			for i := range perSet {
				perSet[i], err = baseline.NewBF(m/g, k, baseline.WithSeed(seed+uint64(i)*977))
				if err != nil {
					panic(err)
				}
				for _, e := range sets[i] {
					perSet[i].Add(e)
				}
			}

			var cm, cc, cp int
			for s := 0; s < g; s++ {
				for _, e := range sets[s] {
					if ans := multi.Query(e); ans.Clear() && ans.Region() == 1<<s {
						cm++
					}
					if got, ok := coded.Query(e); ok && got == s {
						cc++
					}
					// Per-set BFs: clear when exactly the true filter hits.
					hits, truthHit := 0, false
					for i, f := range perSet {
						if f.Contains(e) {
							hits++
							if i == s {
								truthHit = true
							}
						}
					}
					if hits == 1 && truthHit {
						cp++
					}
				}
			}
			total := float64(g * n)
			clearMulti += float64(cm) / total
			clearCoded += float64(cc) / total
			clearPerSet += float64(cp) / total
			accMulti += float64(mAcc.Reads()) / total
			accCoded += float64(cAcc.Reads()) / total

			// Overlap experiment: elements shared by sets 0 and 1.
			shared := trace.Bytes(gen.Distinct(n / 4))
			overlapSets := make([][][]byte, g)
			for i := range overlapSets {
				overlapSets[i] = sets[i]
			}
			overlapSets[0] = append(append([][]byte{}, sets[0]...), shared...)
			overlapSets[1] = append(append([][]byte{}, sets[1]...), shared...)

			multiO, err := core.BuildMultiAssociation(overlapSets, m, k, core.WithSeed(seed))
			if err != nil {
				panic(err)
			}
			codedO, err := baseline.BuildCodedBF(overlapSets, m, k, baseline.WithSeed(seed))
			if err != nil {
				panic(err)
			}
			var wc, wm int
			truthMask := 0b011 // sets 0 and 1
			for _, e := range shared {
				// CodedBF is unsound if it returns any valid single set.
				if _, ok := codedO.Query(e); ok {
					wc++
				}
				// MultiAssociation is unsound only if the true region is
				// not among the candidates (never happens) or a clear
				// answer names a different region.
				ans := multiO.Query(e)
				if !ans.Contains(truthMask) || (ans.Clear() && ans.Region() != truthMask) {
					wm++
				}
			}
			wrongCoded += float64(wc) / float64(len(shared))
			wrongMulti += float64(wm) / float64(len(shared))
		}

		tf := float64(cfg.Trials)
		x := float64(k)
		clearFig.Add("MultiShBF_A", x, clearMulti/tf)
		clearFig.Add("MultiShBF_A theory", x, analytic.ClearProbMultiShBFA(g, k))
		clearFig.Add("CodedBF", x, clearCoded/tf)
		clearFig.Add("per-set BFs", x, clearPerSet/tf)
		accFig.Add("MultiShBF_A", x, accMulti/tf)
		accFig.Add("CodedBF", x, accCoded/tf)
		overlapFig.Add("CodedBF", x, wrongCoded/tf)
		overlapFig.Add("MultiShBF_A", x, wrongMulti/tf)
	}
	clearFig.Notes = append(clearFig.Notes,
		fmt.Sprintf("g=%d sets of %d elements each, equal total memory m = 3n·k/ln2", g, n))
	overlapFig.Notes = append(overlapFig.Notes,
		"CodedBF ORs the codes of overlapping sets (paper §2.2's disjointness requirement); the shifting framework stays sound")
	accFig.Notes = append(accFig.Notes,
		"MultiShBF_A reads k windows; CodedBF probes ⌈log2(g+1)⌉ filters bit by bit")
	return []*Figure{clearFig, accFig, overlapFig}
}
