package experiment

import (
	"bytes"
	"strings"
	"testing"
)

// quickCfg is shared across the runner tests; Quick() keeps every run in
// the tens of milliseconds while preserving the qualitative shapes.
var quickCfg = Quick()

// seriesYs extracts the y values of a named series.
func seriesYs(t *testing.T, fig *Figure, name string) []float64 {
	t.Helper()
	s := fig.Get(name)
	if s == nil {
		t.Fatalf("figure %s has no series %q (have %v)", fig.ID, name, seriesNames(fig.Series))
	}
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ys[i] = p.Y
	}
	return ys
}

func TestRunFig3(t *testing.T) {
	figs := RunFig3(quickCfg)
	if len(figs) != 2 {
		t.Fatalf("got %d figures", len(figs))
	}
	// Shape: ShBF FPR decreasing in w̄ and converging to the BF line.
	sh := seriesYs(t, figs[0], "ShBF_M k=8")
	bf := seriesYs(t, figs[0], "BF k=8")
	if sh[0] < sh[len(sh)-1] {
		t.Fatal("ShBF FPR not decreasing in w̄")
	}
	gap := (sh[len(sh)-1] - bf[len(bf)-1]) / bf[len(bf)-1]
	if gap > 0.05 {
		t.Fatalf("at max w̄ the gap to BF is %.3f, want <5%%", gap)
	}
}

func TestRunFig4(t *testing.T) {
	figs := RunFig4(quickCfg)
	fig := figs[0]
	// Shape: for every n, ShBF_M within a few percent of BF at every k.
	for _, n := range []string{"4000", "8000", "12000"} {
		sh := seriesYs(t, fig, "ShBF_M n="+n)
		bf := seriesYs(t, fig, "BF n="+n)
		for i := range sh {
			if bf[i] == 0 {
				continue
			}
			if (sh[i]-bf[i])/bf[i] > 0.2 {
				t.Fatalf("n=%s point %d: ShBF %.4g vs BF %.4g", n, i, sh[i], bf[i])
			}
		}
	}
}

func TestRunFig7(t *testing.T) {
	figs := RunFig7(quickCfg)
	if len(figs) != 3 {
		t.Fatalf("got %d figures", len(figs))
	}
	for _, fig := range figs {
		theory := seriesYs(t, fig, "ShBF_M theory")
		sim := seriesYs(t, fig, "ShBF_M sim")
		om := seriesYs(t, fig, "1MemBF (m)")
		for i := range theory {
			// Sim within a factor of theory (small probe counts here).
			if theory[i] > 1e-4 && (sim[i] > 2.2*theory[i] || sim[i] < theory[i]/2.2) {
				t.Fatalf("fig %s point %d: sim %.5g vs theory %.5g", fig.ID, i, sim[i], theory[i])
			}
			// The paper's headline: 1MemBF has a multiple of ShBF's FPR.
			if theory[i] > 1e-4 && om[i] < sim[i] {
				t.Fatalf("fig %s point %d: 1MemBF FPR %.5g below ShBF %.5g", fig.ID, i, om[i], sim[i])
			}
		}
	}
}

func TestRunFig8(t *testing.T) {
	figs := RunFig8(quickCfg)
	if len(figs) != 3 {
		t.Fatalf("got %d figures", len(figs))
	}
	for _, fig := range figs {
		bf := seriesYs(t, fig, "BF")
		sh := seriesYs(t, fig, "ShBF_M")
		for i := range bf {
			ratio := sh[i] / bf[i]
			// Figure 8: ShBF_M uses about half the accesses.
			if ratio > 0.75 {
				t.Fatalf("fig %s point %d: access ratio %.2f, want ≈0.5", fig.ID, i, ratio)
			}
		}
		// Measurements track the analytic expectation.
		bfTheory := seriesYs(t, fig, "BF theory")
		for i := range bf {
			if bf[i] > 1.3*bfTheory[i] || bf[i] < 0.7*bfTheory[i] {
				t.Fatalf("fig %s point %d: BF accesses %.2f vs theory %.2f", fig.ID, i, bf[i], bfTheory[i])
			}
		}
	}
}

func TestRunFig9(t *testing.T) {
	figs := RunFig9(quickCfg)
	if len(figs) != 3 {
		t.Fatalf("got %d figures", len(figs))
	}
	// Figure 9's headline in the paper — ShBF_M fastest at every point —
	// was driven by hash-computation cost (k/2+1 full passes vs k). The
	// one-pass digest pipeline (PR 3) removed that cost for every scheme:
	// all of them now scan the key once and differ only in integer mixes
	// and memory accesses, so the wall-clock ordering compresses to a
	// near-tie (see EXPERIMENTS.md, "Hash-cost model"). What must still
	// hold is that ShBF_M is not materially slower than BF: its k/2
	// window reads keep it at or under BF's k bit probes.
	for _, fig := range figs {
		bf := seriesYs(t, fig, "BF")
		sh := seriesYs(t, fig, "ShBF_M")
		materiallySlower := 0
		for i := range bf {
			if sh[i] < 0.7*bf[i] {
				materiallySlower++
			}
		}
		// Timing noise at Quick scale (and CI contention): the trend must
		// hold, but isolated inversions are expected.
		if materiallySlower > len(bf)/2 {
			t.Fatalf("fig %s: ShBF_M materially slower than BF at %d/%d points",
				fig.ID, materiallySlower, len(bf))
		}
	}
}

func TestRunFig10(t *testing.T) {
	figs := RunFig10(quickCfg)
	if len(figs) != 3 {
		t.Fatalf("got %d figures", len(figs))
	}
	clearI := seriesYs(t, figs[0], "iBF sim")
	clearIT := seriesYs(t, figs[0], "iBF theory")
	clearS := seriesYs(t, figs[0], "ShBF_A sim")
	clearST := seriesYs(t, figs[0], "ShBF_A theory")
	for i := range clearI {
		// Sim matches theory (the paper reports ≤0.7% error).
		if d := clearI[i] - clearIT[i]; d > 0.05 || d < -0.05 {
			t.Fatalf("iBF sim %.4f vs theory %.4f at point %d", clearI[i], clearIT[i], i)
		}
		if d := clearS[i] - clearST[i]; d > 0.05 || d < -0.05 {
			t.Fatalf("ShBF_A sim %.4f vs theory %.4f at point %d", clearS[i], clearST[i], i)
		}
		// ShBF_A always clears more often.
		if clearS[i] <= clearI[i] {
			t.Fatalf("point %d: ShBF_A clear %.4f not above iBF %.4f", i, clearS[i], clearI[i])
		}
	}
	// Accesses: ShBF_A ≈ 0.66× iBF.
	accI := seriesYs(t, figs[1], "iBF")
	accS := seriesYs(t, figs[1], "ShBF_A")
	for i := range accI {
		if r := accS[i] / accI[i]; r > 0.85 {
			t.Fatalf("point %d: access ratio %.2f, want ≈0.66", i, r)
		}
	}
}

func TestRunTable2(t *testing.T) {
	tab := RunTable2(quickCfg)
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	if tab.Rows[0][0] != "iBF" || tab.Rows[1][0] != "ShBF_A" {
		t.Fatalf("unexpected schemes: %v / %v", tab.Rows[0][0], tab.Rows[1][0])
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ShBF_A") {
		t.Fatal("render missing scheme name")
	}
}

func TestRunFig11(t *testing.T) {
	figs := RunFig11(quickCfg)
	if len(figs) != 3 {
		t.Fatalf("got %d figures", len(figs))
	}
	crT := seriesYs(t, figs[0], "ShBF_X theory")
	crS := seriesYs(t, figs[0], "ShBF_X sim")
	crSp := seriesYs(t, figs[0], "Spectral BF")
	for i := range crS {
		if d := crS[i] - crT[i]; d > 0.05 || d < -0.05 {
			t.Fatalf("point %d: ShBF_X CR sim %.4f vs theory %.4f", i, crS[i], crT[i])
		}
		// The paper's headline: ShBF_X has a materially higher CR.
		if crS[i] <= crSp[i] {
			t.Fatalf("point %d: ShBF_X CR %.4f not above Spectral %.4f", i, crS[i], crSp[i])
		}
	}
	// Accesses at large k: ShBF_X below Spectral (crossover ≈ k=7).
	accSp := figs[1].Get("Spectral BF").Points
	accSh := figs[1].Get("ShBF_X").Points
	var spAt16, shAt16 float64
	for i := range accSp {
		if accSp[i].X == 16 {
			spAt16 = accSp[i].Y
			shAt16 = accSh[i].Y
		}
	}
	if shAt16 >= spAt16 {
		t.Fatalf("k=16: ShBF_X accesses %.2f not below Spectral %.2f", shAt16, spAt16)
	}
}

func TestRunExtensions(t *testing.T) {
	gen := RunGeneralAblation(quickCfg)
	if len(gen) != 2 {
		t.Fatalf("general ablation: %d figures", len(gen))
	}
	sim := seriesYs(t, gen[0], "t-shift sim")
	theory := seriesYs(t, gen[0], "t-shift theory")
	for i := range sim {
		// Only points with ≥ ~15 expected false positives carry enough
		// statistics for a factor-3 two-sided check; below that the
		// Poisson noise alone violates it with non-trivial probability.
		if theory[i]*float64(quickCfg.Probes) >= 15 && (sim[i] > 3*theory[i] || sim[i] < theory[i]/3) {
			t.Fatalf("t-shift point %d: sim %.5g vs theory %.5g", i, sim[i], theory[i])
		}
	}

	scm := RunSCMAblation(quickCfg)
	errCM := seriesYs(t, scm[0], "CM sketch")
	errSCM := seriesYs(t, scm[0], "SCM sketch")
	spCM := seriesYs(t, scm[1], "CM sketch")
	spSCM := seriesYs(t, scm[1], "SCM sketch")
	slower := 0
	for i := range errCM {
		if errCM[i] < 0 || errSCM[i] < 0 {
			t.Fatal("count-min style sketches cannot underestimate")
		}
		// Section 5.5's trade: accuracy stays in the same regime at
		// equal memory…
		if errSCM[i] > 3.5*errCM[i]+0.5 {
			t.Fatalf("point %d: SCM error %.3f vs CM %.3f — not equal-memory comparable", i, errSCM[i], errCM[i])
		}
		// …while queries get faster (allow isolated timing inversions).
		if spSCM[i] <= spCM[i] {
			slower++
		}
	}
	// Timing under CI contention is noisy; only a systematic inversion
	// (most points) fails.
	if slower > len(spCM)/2 {
		t.Fatalf("SCM slower than CM at %d/%d points", slower, len(spCM))
	}

	upd := RunUpdateAblation(quickCfg)
	safe := seriesYs(t, upd[0], "safe (5.3.2)")
	for i, v := range safe {
		if v != 0 {
			t.Fatalf("safe update mode produced false negatives at point %d: %v", i, v)
		}
	}

	zoo := RunMembershipZoo(quickCfg)
	if len(zoo) != 2 {
		t.Fatalf("zoo: %d figures", len(zoo))
	}
}

func TestRunMultiSetAblation(t *testing.T) {
	figs := RunMultiSetAblation(quickCfg)
	if len(figs) != 3 {
		t.Fatalf("got %d figures", len(figs))
	}
	// Disjoint clear rate: matches the (1−0.5^k)^{R−1} theory; CodedBF
	// is competitive in this regime (its weaknesses are accesses and
	// overlap, asserted below).
	multi := seriesYs(t, figs[0], "MultiShBF_A")
	theory := seriesYs(t, figs[0], "MultiShBF_A theory")
	for i := range multi {
		if d := multi[i] - theory[i]; d > 0.05 || d < -0.05 {
			t.Fatalf("point %d: multi clear %.4f vs theory %.4f", i, multi[i], theory[i])
		}
	}
	// Accesses: k windows vs CodedBF's ⌈log2(g+1)⌉ filters of k probes.
	accMulti := seriesYs(t, figs[1], "MultiShBF_A")
	accCoded := seriesYs(t, figs[1], "CodedBF")
	for i := range accMulti {
		if accMulti[i] >= accCoded[i] {
			t.Fatalf("point %d: MultiShBF_A accesses %.2f not below CodedBF %.2f", i, accMulti[i], accCoded[i])
		}
	}
	// Overlap: the framework stays sound; CodedBF misclassifies nearly
	// everything shared.
	wrongMulti := seriesYs(t, figs[2], "MultiShBF_A")
	wrongCoded := seriesYs(t, figs[2], "CodedBF")
	for i := range wrongMulti {
		if wrongMulti[i] != 0 {
			t.Fatalf("point %d: MultiShBF_A unsound rate %v", i, wrongMulti[i])
		}
		if wrongCoded[i] < 0.9 {
			t.Fatalf("point %d: CodedBF misclassified only %.2f of shared elements", i, wrongCoded[i])
		}
	}
}

func TestRunSkewAblation(t *testing.T) {
	figs := RunSkewAblation(quickCfg)
	if len(figs) != 2 {
		t.Fatalf("got %d figures", len(figs))
	}
	sh := seriesYs(t, figs[0], "ShBF_X")
	sp := seriesYs(t, figs[0], "Spectral BF")
	// ShBF_X stays accurate at every skew and beats the counter scheme.
	for i := range sh {
		if sh[i] < 0.9 {
			t.Fatalf("point %d: ShBF_X CR %.3f dropped under skew", i, sh[i])
		}
		if sh[i] <= sp[i] {
			t.Fatalf("point %d: ShBF_X %.3f not above Spectral %.3f", i, sh[i], sp[i])
		}
	}
}

func TestRunCostModelTable(t *testing.T) {
	tab := RunCostModelTable(quickCfg)
	if len(tab.Rows) != 4 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	// The headline: ShBF_M queries cost about half the BF's accesses.
	var bfAcc, shAcc string
	for _, row := range tab.Rows {
		switch row[0] {
		case "BF / CBF":
			bfAcc = row[1]
		case "ShBF_M / CShBF_M":
			shAcc = row[1]
		}
	}
	if bfAcc == "" || shAcc == "" {
		t.Fatal("missing schemes in cost table")
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DRAM") {
		t.Fatal("render missing model context")
	}
}

func TestRunUpdateTable(t *testing.T) {
	tab := RunUpdateTable(quickCfg)
	if len(tab.Rows) != 5 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	names := map[string]bool{}
	for _, row := range tab.Rows {
		names[row[0]] = true
		if row[1] == "0.00" {
			t.Fatalf("%s: zero churn throughput", row[0])
		}
	}
	for _, want := range []string{"CBF", "CShBF_M", "CShBF_X (5.3.2)", "CShBF_X (5.3.1)", "Cuckoo filter"} {
		if !names[want] {
			t.Fatalf("missing scheme %q", want)
		}
	}
}

func TestFigureRenderAndCSV(t *testing.T) {
	fig := &Figure{ID: "x", Title: "test", XLabel: "k", YLabel: "y"}
	fig.Add("a", 1, 0.5)
	fig.Add("a", 2, 0.25)
	fig.Add("b", 1, 42)
	fig.Notes = append(fig.Notes, "a note")

	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure x", "k", "a", "b", "0.5", "42", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "k,a,b" {
		t.Fatalf("CSV header %q", lines[0])
	}
	if lines[1] != "1,0.5,42" {
		t.Fatalf("CSV row %q", lines[1])
	}
	if lines[2] != "2,0.25," {
		t.Fatalf("CSV row %q", lines[2])
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{ID: "t", Title: "demo", Columns: []string{"a", "b,with comma"}}
	tab.AddRow("1", "x\"y")
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,\"b,with comma\"\n1,\"x\"\"y\"\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("AddRow with wrong arity did not panic")
		}
	}()
	tab.AddRow("only one")
}

func TestStats(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if Stddev([]float64{5}) != 0 {
		t.Error("Stddev of one value != 0")
	}
	if got := Stddev([]float64{2, 4}); got < 1.41 || got > 1.42 {
		t.Errorf("Stddev = %v, want √2", got)
	}
	calls := 0
	got := Repeat(3, func(i int) float64 { calls++; return float64(i) })
	if calls != 3 || got != 1 {
		t.Errorf("Repeat: calls=%d mean=%v", calls, got)
	}
	if got := Repeat(0, func(int) float64 { return 7 }); got != 7 {
		t.Errorf("Repeat(0) = %v, want 7 (clamped to 1 trial)", got)
	}
}

func TestMeasureMqps(t *testing.T) {
	if got := MeasureMqps(nil, 0, func([]byte) {}); got != 0 {
		t.Fatalf("empty workload Mqps = %v", got)
	}
	queries := [][]byte{{1}, {2}, {3}}
	got := MeasureMqps(queries, 2_000_000, func([]byte) {}) // 2ms
	if got <= 0 {
		t.Fatalf("Mqps = %v, want positive", got)
	}
}

func TestRunWindowAblation(t *testing.T) {
	figs := RunWindowAblation(quickCfg)
	if len(figs) != 2 {
		t.Fatalf("got %d figures", len(figs))
	}
	soak := figs[0]
	win := seriesYs(t, soak, "window G=4")
	unb := seriesYs(t, soak, "unbounded same-size filter")
	bound := seriesYs(t, soak, "window bound 1-(1-f)^G")
	// Shape 1: the unbounded filter's FPR keeps growing; by the final
	// tick it is far above the window's.
	if unb[len(unb)-1] < 5*win[len(win)-1] {
		t.Fatalf("unbounded FPR %.4g not clearly above window FPR %.4g at the final tick",
			unb[len(unb)-1], win[len(win)-1])
	}
	// Shape 2: once steady state is reached (tick ≥ G), the window FPR
	// stays at or below the analytic bound with measurement slack.
	for i := 4; i < len(win); i++ {
		if win[i] > 2*bound[i]+0.01 {
			t.Fatalf("tick %d: window FPR %.4g above 2× bound %.4g", i+1, win[i], bound[i])
		}
	}
	// Shape 3: steady-state FPR grows with G and tracks the bound.
	byG := figs[1]
	meas := seriesYs(t, byG, "measured")
	bnds := seriesYs(t, byG, "bound 1-(1-f)^G")
	for i := range meas {
		if meas[i] > 2*bnds[i]+0.01 {
			t.Fatalf("G point %d: measured %.4g above 2× bound %.4g", i, meas[i], bnds[i])
		}
	}
	if bnds[len(bnds)-1] <= bnds[0] {
		t.Fatal("bound not increasing in G")
	}
}
