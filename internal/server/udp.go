package server

import (
	"errors"
	"net"

	"shbf/internal/ingest"
)

// The UDP ingest tier (shbfd -udp-addr). A listener accepts ShBU
// datagrams from edge agents (internal/ingest): packed add-batches
// feed the namespace's membership filter, reassembled ShBE envelopes
// union-merge into whichever filter of the trio their self-described
// kind names. Every datagram passes the same write gates as the TCP
// transports — frozen tenants refuse, per-tenant rate quotas charge
// one token per key — but UDP has no reply, so refusals surface only
// in the shbf_udp_* metric families (receiver-side sequence
// accounting also measures loss, reordering and duplication there).

// udpHandler adapts the namespace registry to ingest.Handler.
type udpHandler struct{ s *Server }

// HandleBatch applies a packed key batch as a membership add.
func (h udpHandler) HandleBatch(name string, keys [][]byte) ingest.DropReason {
	ns, err := h.s.lookup(name)
	if err != nil {
		return ingest.DropUnknownNamespace
	}
	if ns.writable() != nil {
		return ingest.DropFrozen
	}
	if ns.admit(len(keys), true) != nil {
		return ingest.DropRate
	}
	if ns.mem.AddAll(keys) != nil {
		return ingest.DropMerge
	}
	ns.stats.membershipAdd.Add(uint64(len(keys)))
	return ingest.DropNone
}

// HandleEnvelope union-merges a reassembled ShBE envelope, charging
// the rate quota for the envelope's element count after decode but
// before any mutation.
func (h udpHandler) HandleEnvelope(name string, envelope []byte) ingest.DropReason {
	ns, err := h.s.lookup(name)
	if err != nil {
		return ingest.DropUnknownNamespace
	}
	if ns.writable() != nil {
		return ingest.DropFrozen
	}
	src, err := decodeMergeEnvelope(envelope)
	if err != nil {
		return ingest.DropDecode
	}
	_, err = ns.mergeFilter(src, func(nKeys int) error { return ns.admit(nKeys, true) })
	switch {
	case err == nil:
		return ingest.DropNone
	case errors.Is(err, errOverloaded):
		return ingest.DropRate
	case errors.Is(err, errMergeBadEnvelope):
		// Decoded, but not a kind any filter of the trio can merge.
		return ingest.DropDecode
	default:
		// Incompatible geometry/seed, or a windowed destination.
		return ingest.DropMerge
	}
}

// ServeShBU reads ShBU datagrams from pc until it is closed, applying
// each through the UDP receiver. Run it like ServeShBP:
//
//	pc, _ := net.ListenPacket("udp", addr)
//	go s.ServeShBU(pc)
//
// A closed listener returns nil; any other read error is returned.
func (s *Server) ServeShBU(pc net.PacketConn) error {
	buf := make([]byte, ingest.MaxDatagram)
	for {
		n, _, err := pc.ReadFrom(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		// Process uses the payload synchronously (reassembly copies),
		// so the buffer is safe to reuse for the next datagram.
		s.udp.Process(buf[:n])
	}
}

// UDPStats snapshots the UDP ingest accounting (also exported as the
// shbf_udp_* metric families).
func (s *Server) UDPStats() ingest.Stats { return s.udp.Stats() }
