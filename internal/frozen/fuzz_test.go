package frozen

import (
	"bytes"
	"testing"

	"shbf/internal/core"
	"shbf/internal/sharded"
	"shbf/internal/window"
)

// fuzzSeedContainers returns one valid ShBZ container per freezable
// source kind, for the fuzz corpora.
func fuzzSeedContainers(t interface{ Fatal(args ...any) }) [][]byte {
	var out [][]byte
	add := func(f any, err error) {
		if err != nil {
			t.Fatal(err)
		}
		blob, err := Append(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, blob)
	}
	m, err := core.NewMembership(1<<10, 8, core.WithSeed(1))
	if err == nil {
		m.Add([]byte("seed-key"))
	}
	add(m, err)
	cm, err := core.NewCountingMembership(1<<10, 4, core.WithSeed(2))
	if err == nil {
		if ierr := cm.Insert([]byte("seed-key")); ierr != nil {
			t.Fatal(ierr)
		}
	}
	add(cm, err)
	sh, err := sharded.New(1<<12, 8, 4, core.WithSeed(3))
	if err == nil {
		sh.Add([]byte("seed-key"))
	}
	add(sh, err)
	w, err := window.NewMembership(core.Spec{Kind: core.KindWindowMembership,
		M: 1 << 10, K: 4, Seed: 4, MaxOffset: core.DefaultMaxOffset, Generations: 2})
	if err == nil {
		w.Add([]byte("seed-key"))
	}
	add(w, err)
	sw, err := sharded.NewWindow(core.Spec{Kind: core.KindWindowShardedMembership,
		M: 1 << 12, K: 4, Seed: 5, MaxOffset: core.DefaultMaxOffset, Generations: 2, Shards: 2})
	if err == nil {
		sw.Add([]byte("seed-key"))
	}
	add(sw, err)
	return out
}

// FuzzFrozenDecode feeds arbitrary bytes to Open: garbage and
// truncations must error (never panic), and anything accepted must be
// internally consistent — the trimmed container bytes re-open to the
// same geometry, and a probe runs without faulting.
func FuzzFrozenDecode(f *testing.F) {
	for _, blob := range fuzzSeedContainers(f) {
		f.Add(blob)
		f.Add(blob[:len(blob)/2]) // truncation seed
	}
	f.Add([]byte("ShBZ"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fz, err := Open(data)
		if err != nil {
			return
		}
		// Accepted ⇒ round-trip: the container's own bytes open again
		// with identical geometry.
		again, err := Open(fz.Bytes())
		if err != nil {
			t.Fatalf("accepted container failed to re-open: %v", err)
		}
		if again.Shards() != fz.Shards() || again.M() != fz.M() || again.K() != fz.K() ||
			again.MaxOffset() != fz.MaxOffset() || again.Seed() != fz.Seed() ||
			again.N() != fz.N() || again.SourceKind() != fz.SourceKind() {
			t.Fatal("re-opened container reports different geometry")
		}
		if !bytes.Equal(again.Bytes(), fz.Bytes()) {
			t.Fatal("re-opened container trimmed to different bytes")
		}
		// Probing must be memory-safe whatever the (validated) header
		// says, and agree between the two handles.
		for _, key := range [][]byte{nil, []byte("a"), []byte("seed-key"), bytes.Repeat([]byte{0xFF}, 13)} {
			if fz.Contains(key) != again.Contains(key) {
				t.Fatal("identical containers disagree on a probe")
			}
		}
	})
}

// FuzzStackOpen feeds arbitrary bytes to OpenStack: garbage must
// error, and an accepted stack must serve every At(i) without panics —
// each either a valid frozen filter or a clean error.
func FuzzStackOpen(f *testing.F) {
	seeds := fuzzSeedContainers(f)
	var b StackBuilder
	for _, blob := range seeds {
		if err := b.AddFrozen(blob); err != nil {
			f.Fatal(err)
		}
	}
	file := b.Finish()
	f.Add(file)
	f.Add(file[:len(file)-1])
	f.Add((&StackBuilder{}).Finish()) // empty stack
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := OpenStack(data)
		if err != nil {
			return
		}
		if st.Len() < 0 || st.Len() > maxStackFilters {
			t.Fatalf("accepted stack reports implausible count %d", st.Len())
		}
		for i := 0; i < st.Len(); i++ {
			fz, err := st.At(i)
			if err != nil {
				continue // a stack may index non-ShBZ bytes; At must just error
			}
			fz.Contains([]byte("probe"))
		}
	})
}
