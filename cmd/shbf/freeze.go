package main

import (
	"flag"
	"fmt"
	"os"

	"shbf"
)

// freeze / stack: the LSM-shipping subcommands. freeze compacts a live
// filter envelope (shbf dump) into a read-only ShBZ container that
// shbf.OpenFrozen serves zero-copy from a file or mmap region; stack
// packs many containers into one ShBK stack file (or lists one), the
// shape a storage engine wants for thousands of SSTable-style filters
// behind a single open.

// runFreeze loads a ShBE envelope, freezes it, and writes the ShBZ
// container.
func runFreeze(args []string) error {
	fs := flag.NewFlagSet("shbf freeze", flag.ContinueOnError)
	var (
		in  = fs.String("in", "", "filter envelope to freeze (see shbf dump)")
		out = fs.String("out", "", "output file for the ShBZ frozen container")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("freeze needs -in and -out")
	}
	blob, err := freezeEnvelopeFile(*in)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	// Re-open what was written, so the report reflects the container
	// itself, not the intent.
	fz, err := shbf.OpenFrozen(blob)
	if err != nil {
		return fmt.Errorf("re-opening written container: %w", err)
	}
	fmt.Printf("froze %s filter: n=%d, %d shards, %d bytes → %s\n",
		fz.SourceKind(), fz.N(), fz.Shards(), fz.SizeBytes(), *out)
	return nil
}

// freezeEnvelopeFile loads one ShBE envelope and returns its frozen
// container bytes.
func freezeEnvelopeFile(path string) ([]byte, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	f, err := shbf.Load(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	blob, err := shbf.Freeze(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return blob, nil
}

// runStack builds a ShBK stack file from containers/envelopes, or
// lists an existing one with -in.
func runStack(args []string) error {
	fs := flag.NewFlagSet("shbf stack", flag.ContinueOnError)
	var (
		in  = fs.String("in", "", "stack file to list (mutually exclusive with building)")
		out = fs.String("out", "", "output stack file (positional args: .shbz containers and .shbf envelopes)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*in == "") == (*out == "") {
		return fmt.Errorf("stack needs exactly one of -in (list) or -out (build)")
	}
	if *in != "" {
		return listStack(*in)
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("stack -out needs at least one container or envelope argument")
	}
	var b shbf.FrozenStackBuilder
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// A ShBZ container stacks as-is; anything else must be a ShBE
		// envelope, frozen on the way in.
		if err := b.AddFrozen(data); err != nil {
			blob, ferr := freezeEnvelopeFile(path)
			if ferr != nil {
				return fmt.Errorf("%s is neither a frozen container (%v) nor a freezable envelope (%v)", path, err, ferr)
			}
			if err := b.AddFrozen(blob); err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
		}
	}
	file := b.Finish()
	if err := os.WriteFile(*out, file, 0o644); err != nil {
		return err
	}
	fmt.Printf("stacked %d filters, %d bytes → %s\n", b.Len(), len(file), *out)
	return nil
}

// listStack opens a stack file and prints one line per entry.
func listStack(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	st, err := shbf.OpenFrozenStack(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: %d filters, %d bytes\n", path, st.Len(), st.SizeBytes())
	for i := 0; i < st.Len(); i++ {
		fz, err := st.At(i)
		if err != nil {
			return err
		}
		fmt.Printf("  [%d] %s: n=%d, shards=%d, k=%d, m=%d, w̄=%d, %d bytes\n",
			i, fz.SourceKind(), fz.N(), fz.Shards(), fz.K(), fz.M(), fz.MaxOffset(), fz.SizeBytes())
	}
	return nil
}
