package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"shbf/internal/core"
)

// Request handlers. Every data-plane handler is namespace-
// parameterized: the v1 routes bind it to the default namespace (and
// stay byte-compatible with the pre-namespace daemon — guarded by
// TestV1CompatByteIdentical), the v2 routes to the tenant named in the
// URL. The ShBP binary listener (binary.go) dispatches onto the same
// namespace methods.

// maxBodyBytes bounds a request body; batches beyond this should be
// split by the client.
const maxBodyBytes = 32 << 20

// keyBatch is the common request shape: a batch of element keys, read
// as raw bytes ("encoding": "raw", the default) or base64
// ("encoding": "base64") for binary IDs like the paper's 13-byte
// 5-tuple flow IDs.
type keyBatch struct {
	Keys     []string `json:"keys"`
	Encoding string   `json:"encoding,omitempty"`
}

// countedItem is one multiplicity update: count defaults to 1.
type countedItem struct {
	Key   string `json:"key"`
	Count int    `json:"count,omitempty"`
}

type countedBatch struct {
	Items    []countedItem `json:"items"`
	Encoding string        `json:"encoding,omitempty"`
}

// setBatch targets one of the two association sets.
type setBatch struct {
	Set      int      `json:"set"`
	Keys     []string `json:"keys"`
	Encoding string   `json:"encoding,omitempty"`
}

// decodeKey maps one wire key to element bytes.
func decodeKey(key, encoding string) ([]byte, error) {
	switch encoding {
	case "", "raw":
		return []byte(key), nil
	case "base64":
		return base64.StdEncoding.DecodeString(key)
	default:
		return nil, fmt.Errorf("unknown encoding %q (want raw or base64)", encoding)
	}
}

// decodeKeys maps the wire keys to element byte strings.
func decodeKeys(keys []string, encoding string) ([][]byte, error) {
	out := make([][]byte, len(keys))
	for i, k := range keys {
		b, err := decodeKey(k, encoding)
		if err != nil {
			return nil, fmt.Errorf("key %d: %w", i, err)
		}
		out[i] = b
	}
	return out, nil
}

// readJSON decodes the request body into dst, rejecting oversized and
// malformed bodies.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, errors.New("trailing data after JSON body"))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more useful to do than drop it.
		_ = err
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// isCapacityErr reports the filter update errors that are the
// client's to handle — the one predicate behind both the HTTP 409 and
// the wire StatusConflict mappings (add new capacity-class errors
// here, never in one transport only).
func isCapacityErr(err error) bool {
	return errors.Is(err, core.ErrCountOverflow) ||
		errors.Is(err, core.ErrCounterSaturated) ||
		errors.Is(err, core.ErrNotStored)
}

// updateStatus maps a filter update error to an HTTP status: capacity
// conditions are the client's to handle (409), anything else is a
// server fault.
func updateStatus(err error) int {
	if isCapacityErr(err) {
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}

// --- membership -----------------------------------------------------------

func (s *Server) nsMembershipAdd(ns *namespace, w http.ResponseWriter, r *http.Request) {
	if err := ns.writable(); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	var req keyBatch
	if !readJSON(w, r, &req) {
		return
	}
	keys, err := decodeKeys(req.Keys, req.Encoding)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := ns.admit(len(keys), true); err != nil {
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	// The batch path takes each shard lock once for the whole request
	// instead of once per key.
	if err := ns.mem.AddAll(keys); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	ns.stats.membershipAdd.Add(uint64(len(keys)))
	writeJSON(w, http.StatusOK, map[string]int{"added": len(keys)})
}

func (s *Server) nsMembershipContains(ns *namespace, w http.ResponseWriter, r *http.Request) {
	var req keyBatch
	if !readJSON(w, r, &req) {
		return
	}
	keys, err := decodeKeys(req.Keys, req.Encoding)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := ns.admit(len(keys), false); err != nil {
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	results := ns.mem.ContainsAll(make([]bool, 0, len(keys)), keys)
	ns.stats.membershipContains.Add(uint64(len(keys)))
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// --- association ----------------------------------------------------------

// regionAnswer is the JSON shape of one classify result. Candidates
// lists the possible atomic regions ("s1-only", "both", "s2-only"); an
// empty list is a definite non-member of both sets. Clear mirrors the
// paper's "clear answer" (exactly one candidate). Mask is the raw
// candidate-region bitmask (core.Region), the form the native client
// round-trips; the v1 shim omits it for byte-compatibility.
type regionAnswer struct {
	Region     string   `json:"region"`
	Candidates []string `json:"candidates"`
	Clear      bool     `json:"clear"`
	InS1       bool     `json:"in_s1"`
	InS2       bool     `json:"in_s2"`
	Mask       *uint8   `json:"mask,omitempty"`
}

func regionJSON(r core.Region, withMask bool) regionAnswer {
	cands := make([]string, 0, 3)
	if r.Contains(core.RegionS1Only) {
		cands = append(cands, "s1-only")
	}
	if r.Contains(core.RegionBoth) {
		cands = append(cands, "both")
	}
	if r.Contains(core.RegionS2Only) {
		cands = append(cands, "s2-only")
	}
	ans := regionAnswer{
		Region:     r.String(),
		Candidates: cands,
		Clear:      r.Clear(),
		InS1:       r.InS1(),
		InS2:       r.InS2(),
	}
	if withMask {
		mask := uint8(r)
		ans.Mask = &mask
	}
	return ans
}

// applySetBatch validates a setBatch and applies op1/op2 per key.
func (s *Server) applySetBatch(ns *namespace, w http.ResponseWriter, r *http.Request, op1, op2 func([]byte) error) {
	if err := ns.writable(); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	var req setBatch
	if !readJSON(w, r, &req) {
		return
	}
	if req.Set != 1 && req.Set != 2 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("set must be 1 or 2, got %d", req.Set))
		return
	}
	keys, err := decodeKeys(req.Keys, req.Encoding)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := ns.admit(len(keys), true); err != nil {
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	op := op1
	if req.Set == 2 {
		op = op2
	}
	for i, k := range keys {
		if err := op(k); err != nil {
			// Earlier keys in the batch stay applied; report the split
			// point so the client can resume.
			writeJSON(w, updateStatus(err), map[string]any{
				"error":   err.Error(),
				"applied": i,
			})
			return
		}
	}
	ns.stats.associationUpdate.Add(uint64(len(keys)))
	writeJSON(w, http.StatusOK, map[string]int{"applied": len(keys)})
}

func (s *Server) nsAssociationAdd(ns *namespace, w http.ResponseWriter, r *http.Request) {
	s.applySetBatch(ns, w, r, ns.assoc.InsertS1, ns.assoc.InsertS2)
}

func (s *Server) nsAssociationRemove(ns *namespace, w http.ResponseWriter, r *http.Request) {
	s.applySetBatch(ns, w, r, ns.assoc.DeleteS1, ns.assoc.DeleteS2)
}

func (s *Server) nsAssociationClassify(ns *namespace, w http.ResponseWriter, r *http.Request) {
	var req keyBatch
	if !readJSON(w, r, &req) {
		return
	}
	keys, err := decodeKeys(req.Keys, req.Encoding)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := ns.admit(len(keys), false); err != nil {
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	// Only the v2 route carries the raw mask; the v1 response shape is
	// frozen.
	withMask := r.PathValue("ns") != ""
	regions := ns.assoc.QueryAll(make([]core.Region, 0, len(keys)), keys)
	results := make([]regionAnswer, len(keys))
	for i, r := range regions {
		results[i] = regionJSON(r, withMask)
	}
	ns.stats.associationQuery.Add(uint64(len(keys)))
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// --- multiplicity ---------------------------------------------------------

// applyCountedBatch applies op count-times per item (count defaults to
// 1).
func (s *Server) applyCountedBatch(ns *namespace, w http.ResponseWriter, r *http.Request, op func([]byte) error) {
	if err := ns.writable(); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	var req countedBatch
	if !readJSON(w, r, &req) {
		return
	}
	// The quota charges per key, not per increment: admission meters
	// request traffic, capacity metering is the filters' MaxCount.
	if err := ns.admit(len(req.Items), true); err != nil {
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	applied := 0
	for i, item := range req.Items {
		key, err := decodeKey(item.Key, req.Encoding)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("item %d: %w", i, err))
			return
		}
		count := item.Count
		if count == 0 {
			count = 1
		}
		if count < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("item %d: negative count %d", i, count))
			return
		}
		for j := 0; j < count; j++ {
			if err := op(key); err != nil {
				writeJSON(w, updateStatus(err), map[string]any{
					"error":   fmt.Sprintf("item %d: %s", i, err),
					"applied": applied,
				})
				return
			}
			applied++
		}
	}
	ns.stats.multiplicityUpdate.Add(uint64(applied))
	writeJSON(w, http.StatusOK, map[string]int{"applied": applied})
}

func (s *Server) nsMultiplicityAdd(ns *namespace, w http.ResponseWriter, r *http.Request) {
	s.applyCountedBatch(ns, w, r, ns.mult.Insert)
}

func (s *Server) nsMultiplicityRemove(ns *namespace, w http.ResponseWriter, r *http.Request) {
	s.applyCountedBatch(ns, w, r, ns.mult.Delete)
}

func (s *Server) nsMultiplicityCount(ns *namespace, w http.ResponseWriter, r *http.Request) {
	var req keyBatch
	if !readJSON(w, r, &req) {
		return
	}
	keys, err := decodeKeys(req.Keys, req.Encoding)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := ns.admit(len(keys), false); err != nil {
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	counts := ns.mult.CountAll(make([]int, 0, len(keys)), keys)
	ns.stats.multiplicityQuery.Add(uint64(len(keys)))
	writeJSON(w, http.StatusOK, map[string]any{"counts": counts})
}

// --- snapshot -------------------------------------------------------------

// snapshotRequest is the optional body of POST /v1|v2/snapshot.
type snapshotRequest struct {
	// RotationConsistent serializes the snapshot against rotations, so
	// every shard of every window ring is captured at one epoch (the
	// default interleaves them: per-shard consistent, possibly
	// adjacent-epoch).
	RotationConsistent bool `json:"rotation_consistent,omitempty"`
}

// handleSnapshot serves POST /v1/snapshot and POST /v2/snapshot: both
// persist the entire namespace set (the container format is shared)
// and both honor the rotation_consistent option. The body is optional.
// The v1 route stays lenient — the pre-namespace daemon ignored the
// body entirely, so a malformed one is treated as "no options" rather
// than rejected; v2 validates strictly.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.cfg.SnapshotPath == "" {
		writeError(w, http.StatusConflict, errors.New("no snapshot path configured (start shbfd with -snapshot)"))
		return
	}
	var req snapshotRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	if len(body) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			if strings.HasPrefix(r.URL.Path, "/v2/") {
				writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
				return
			}
			req = snapshotRequest{} // v1 compatibility: bodies were never read
		}
	}
	n, err := s.SaveSnapshotOpts(s.cfg.SnapshotPath, req.RotationConsistent)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.snapshots.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"path": s.cfg.SnapshotPath, "bytes": n})
}

// --- namespaces (v2) ------------------------------------------------------

func (s *Server) handleNamespaceCreate(w http.ResponseWriter, r *http.Request) {
	var nc NamespaceConfig
	if !readJSON(w, r, &nc) {
		return
	}
	if err := s.CreateNamespace(nc); err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, errNamespaceExists):
			status = http.StatusConflict
		case IsOverloaded(err): // daemon memory ceiling
			status = http.StatusTooManyRequests
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"created": nc.Name})
}

func (s *Server) handleNamespaceDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("ns")
	if err := s.DeleteNamespace(name); err != nil {
		status := http.StatusNotFound
		if name == DefaultNamespace {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Server) handleNamespaceList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.namespaceList())
}

// namespaceList assembles the GET /v2/namespaces (and OpNamespaceList)
// body.
func (s *Server) namespaceList() map[string]any {
	list := s.snapshotList()
	infos := make([]NamespaceInfo, len(list))
	for i, ns := range list {
		infos[i] = ns.info()
	}
	return map[string]any{"namespaces": infos}
}

// handleDaemonStats serves GET /v2/stats: uptime plus every tenant's
// summary (per-tenant detail lives at /v2/namespaces/{ns}/stats).
func (s *Server) handleDaemonStats(w http.ResponseWriter, r *http.Request) {
	body := s.namespaceList()
	body["uptime_seconds"] = time.Since(s.start).Seconds()
	body["snapshots"] = s.snapshots.Load()
	writeJSON(w, http.StatusOK, body)
}
