package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"shbf/internal/frozen"
)

// postRaw sends a bodyless POST and returns the status and raw body.
func postRaw(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestFreezeHTTP: POST .../freeze returns a ShBZ container answering
// exactly like the live filter, the namespace rejects every write with
// 409 afterwards while reads keep serving, and a repeat freeze is
// idempotent.
func TestFreezeHTTP(t *testing.T) {
	ts := newTestServer(t, testConfig())
	post(t, ts.URL+"/v2/namespaces", map[string]any{"name": "cold"}, 201, nil)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("flow-%d", i)
	}
	post(t, ts.URL+"/v2/namespaces/cold/membership/add", map[string]any{"keys": keys}, 200, nil)

	status, blob := postRaw(t, ts.URL+"/v2/namespaces/cold/freeze")
	if status != 200 {
		t.Fatalf("freeze: status %d: %s", status, blob)
	}
	fz, err := frozen.Open(blob)
	if err != nil {
		t.Fatalf("opening frozen container: %v", err)
	}
	if fz.N() != len(keys) {
		t.Fatalf("frozen N = %d, want %d", fz.N(), len(keys))
	}
	for _, k := range keys {
		if !fz.Contains([]byte(k)) {
			t.Fatalf("frozen container missing %q", k)
		}
	}

	// Every write path conflicts now — membership, association,
	// multiplicity, merge, rotate — over HTTP.
	post(t, ts.URL+"/v2/namespaces/cold/membership/add", map[string]any{"keys": []string{"late"}}, 409, nil)
	post(t, ts.URL+"/v2/namespaces/cold/association/add", map[string]any{"set": 1, "keys": []string{"late"}}, 409, nil)
	post(t, ts.URL+"/v2/namespaces/cold/association/remove", map[string]any{"set": 1, "keys": []string{"late"}}, 409, nil)
	post(t, ts.URL+"/v2/namespaces/cold/multiplicity/add", map[string]any{"items": []map[string]any{{"key": "late"}}}, 409, nil)
	post(t, ts.URL+"/v2/namespaces/cold/multiplicity/remove", map[string]any{"items": []map[string]any{{"key": "late"}}}, 409, nil)
	post(t, ts.URL+"/v2/namespaces/cold/rotate", map[string]any{}, 409, nil)
	if st, _ := postRaw(t, ts.URL+"/v2/namespaces/cold/merge"); st != 409 {
		t.Fatalf("merge into frozen namespace: status %d, want 409", st)
	}

	// Reads keep serving.
	var res struct {
		Results []bool `json:"results"`
	}
	post(t, ts.URL+"/v2/namespaces/cold/membership/contains",
		map[string]any{"keys": []string{keys[0], "never-added"}}, 200, &res)
	if !res.Results[0] || res.Results[1] {
		t.Fatalf("frozen namespace reads = %v, want [true false]", res.Results)
	}

	// Repeat freeze: idempotent, byte-identical (nothing can have
	// changed in between).
	status, blob2 := postRaw(t, ts.URL+"/v2/namespaces/cold/freeze")
	if status != 200 || !bytes.Equal(blob, blob2) {
		t.Fatalf("repeat freeze: status %d, byte-identical=%v", status, bytes.Equal(blob, blob2))
	}

	// The tenant summary reports the flag; other tenants stay writable.
	var list struct {
		Namespaces []NamespaceInfo `json:"namespaces"`
	}
	get(t, ts.URL+"/v2/namespaces", &list)
	for _, in := range list.Namespaces {
		if in.Name == "cold" && !in.Frozen {
			t.Fatal("frozen tenant summary missing frozen=true")
		}
		if in.Name == DefaultNamespace && in.Frozen {
			t.Fatal("default tenant froze by contagion")
		}
	}
	post(t, ts.URL+"/v1/membership/add", map[string]any{"keys": []string{"still-live"}}, 200, nil)
}

// TestFreezeWindowedUnion: freezing a windowed tenant collapses the
// ring by union — keys from every live generation answer true.
func TestFreezeWindowedUnion(t *testing.T) {
	cfg := testConfig()
	ts := newTestServer(t, cfg)
	g := 3
	post(t, ts.URL+"/v2/namespaces", map[string]any{"name": "ring", "window_generations": g}, 201, nil)
	post(t, ts.URL+"/v2/namespaces/ring/membership/add", map[string]any{"keys": []string{"old"}}, 200, nil)
	post(t, ts.URL+"/v2/namespaces/ring/rotate", map[string]any{}, 200, nil)
	post(t, ts.URL+"/v2/namespaces/ring/membership/add", map[string]any{"keys": []string{"new"}}, 200, nil)

	status, blob := postRaw(t, ts.URL+"/v2/namespaces/ring/freeze")
	if status != 200 {
		t.Fatalf("freeze windowed: status %d: %s", status, blob)
	}
	fz, err := frozen.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !fz.Contains([]byte("old")) || !fz.Contains([]byte("new")) {
		t.Fatal("windowed freeze lost a live generation")
	}
}

// TestDaemonStatsRollupFPR pins the GET /v2/stats rollup shape: every
// tenant summary carries the estimated_fpr the tenant's own stats
// endpoint reports (the rollup used to omit it, so dashboards reading
// only /v2/stats flew blind on accuracy).
func TestDaemonStatsRollupFPR(t *testing.T) {
	ts := newTestServer(t, testConfig())
	post(t, ts.URL+"/v2/namespaces", map[string]any{"name": "t"}, 201, nil)
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	post(t, ts.URL+"/v2/namespaces/t/membership/add", map[string]any{"keys": keys}, 200, nil)

	var st Stats
	get(t, ts.URL+"/v2/namespaces/t/stats", &st)
	if st.Membership.EstimatedFPR <= 0 {
		t.Fatalf("tenant stats estimated_fpr = %g, want > 0 at %d keys", st.Membership.EstimatedFPR, len(keys))
	}

	// Decode the rollup as raw JSON so a silently dropped field cannot
	// hide behind a zero-valued struct member.
	var raw struct {
		Namespaces []map[string]json.RawMessage `json:"namespaces"`
	}
	get(t, ts.URL+"/v2/stats", &raw)
	found := false
	for _, entry := range raw.Namespaces {
		var name string
		if err := json.Unmarshal(entry["name"], &name); err != nil {
			t.Fatal(err)
		}
		fprRaw, ok := entry["estimated_fpr"]
		if !ok {
			t.Fatalf("rollup entry %q has no estimated_fpr field", name)
		}
		if name != "t" {
			continue
		}
		found = true
		var fpr float64
		if err := json.Unmarshal(fprRaw, &fpr); err != nil {
			t.Fatal(err)
		}
		if fpr != st.Membership.EstimatedFPR {
			t.Fatalf("rollup estimated_fpr = %g, tenant endpoint reports %g", fpr, st.Membership.EstimatedFPR)
		}
	}
	if !found {
		t.Fatal("tenant t missing from the rollup")
	}
}
