package trace

import (
	"bytes"
	"testing"
)

// FuzzRead feeds arbitrary bytes to the trace decoder: it must never
// panic and must round-trip anything it accepts.
func FuzzRead(f *testing.F) {
	var valid bytes.Buffer
	_ = Write(&valid, NewGenerator(1).UniformMultiset(5, 10))
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("SHBF"))
	f.Add([]byte("SHBF\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		flows, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, flows); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(flows) {
			t.Fatal("round trip changed flow count")
		}
	})
}
