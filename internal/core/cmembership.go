package core

import (
	"shbf/internal/counters"
	"shbf/internal/memmodel"
)

// CountingMembership is CShBF_M (paper Section 3.3): ShBF_M extended
// with an array C of m+w̄−1 fixed-width counters so elements can be
// deleted. Mirroring the paper's architecture, the bit array B (the
// embedded Membership) serves queries — in SRAM on the paper's hardware
// — while C supports updates from DRAM; the two are kept synchronized on
// every update: a bit in B is 1 exactly when its counter in C is
// non-zero.
type CountingMembership struct {
	filter *Membership
	counts *counters.Array
	pos    []int // scratch: k positions per update
}

// NewCountingMembership returns an empty CShBF_M with the same (m, k,
// w̄) semantics as NewMembership. WithCounterWidth controls the counter
// size (default 4 bits, Section 3.3).
func NewCountingMembership(m, k int, opts ...Option) (*CountingMembership, error) {
	cfg, err := buildConfig(KindCountingMembership, opts)
	if err != nil {
		return nil, err
	}
	inner, err := newMembership(m, k, cfg)
	if err != nil {
		return nil, err
	}
	return &CountingMembership{
		filter: inner,
		counts: counters.New(inner.totalBits(), cfg.counterWidth),
	}, nil
}

// Filter returns the embedded query-side ShBF_M (the array B). Callers
// use it for Contains and statistics; mutating it directly would break
// the B/C synchronization invariant.
func (c *CountingMembership) Filter() *Membership { return c.filter }

// SetUpdateCounter attaches a memory-access counter to the counter array
// C, so update-path DRAM accesses can be reported separately from
// query-path accesses (Section 3.3 discusses exactly this split).
func (c *CountingMembership) SetUpdateCounter(mc *memmodel.Counter) {
	c.counts.SetCounter(mc)
}

// Contains reports membership by querying B only, exactly as the paper's
// SRAM/DRAM deployment would.
func (c *CountingMembership) Contains(e []byte) bool { return c.filter.Contains(e) }

// N returns the number of elements currently stored (inserts minus
// deletes).
func (c *CountingMembership) N() int { return c.filter.n }

// Insert adds e: each of the k counters is incremented and the
// corresponding bit in B set. If any counter is saturated the insert is
// rolled back and ErrCounterSaturated returned, leaving B and C
// consistent.
func (c *CountingMembership) Insert(e []byte) error {
	c.pos = c.filter.positions(e, c.pos)
	for i, p := range c.pos {
		if c.counts.Peek(p) == c.counts.Max() {
			for _, q := range c.pos[:i] {
				if v, _ := c.counts.Dec(q); v == 0 {
					c.filter.clearBit(q)
				}
			}
			return ErrCounterSaturated
		}
		c.counts.Inc(p)
		c.filter.setBit(p)
	}
	c.filter.n++
	return nil
}

// Delete removes one occurrence of e: each of the k counters is
// decremented, and any counter reaching zero clears its bit in B
// (Section 3.3's synchronization rule). If e's encoding is not fully
// present — some counter already zero — nothing is changed and
// ErrNotStored is returned.
func (c *CountingMembership) Delete(e []byte) error {
	c.pos = c.filter.positions(e, c.pos)
	for _, p := range c.pos {
		if c.counts.Peek(p) == 0 {
			return ErrNotStored
		}
	}
	for _, p := range c.pos {
		if v, _ := c.counts.Dec(p); v == 0 {
			c.filter.clearBit(p)
		}
	}
	c.filter.n--
	return nil
}

// CounterOverflows reports how many increments saturated, validating the
// paper's "4 bits are enough" guidance for a given workload.
func (c *CountingMembership) CounterOverflows() uint64 { return c.counts.Overflows() }

// SizeBytes returns the combined footprint of B and C.
func (c *CountingMembership) SizeBytes() int {
	return c.filter.SizeBytes() + c.counts.SizeBytes()
}

// consistent verifies the B/C invariant (bit set ⇔ counter non-zero);
// exported to tests via export_test.go.
func (c *CountingMembership) consistent() bool {
	for i := 0; i < c.filter.totalBits(); i++ {
		if c.filter.bits.Peek(i) != (c.counts.Peek(i) != 0) {
			return false
		}
	}
	return true
}
