package server

import (
	"fmt"
	"net"
	"testing"
	"time"

	"shbf"
	"shbf/internal/ingest"
)

func udpKeys(prefix string, n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%s-%04d", prefix, i))
	}
	return keys
}

// udpBatch encodes one add-batch ShBU datagram.
func udpBatch(t *testing.T, ns string, source, seq uint64, keys [][]byte) []byte {
	t.Helper()
	data, err := ingest.Append(nil, &ingest.Datagram{
		Type: ingest.TypeAddBatch, Source: source, Seq: seq,
		Namespace: ns, Keys: keys,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// udpEnvelope encodes env as fragment datagrams of at most chunk
// payload bytes each.
func udpEnvelope(t *testing.T, ns string, source, seq, flushID uint64, env []byte, chunk int) [][]byte {
	t.Helper()
	count := (len(env) + chunk - 1) / chunk
	var out [][]byte
	for i := 0; i < count; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(env) {
			hi = len(env)
		}
		data, err := ingest.Append(nil, &ingest.Datagram{
			Type: ingest.TypeEnvelopeFrag, Source: source, Seq: seq + uint64(i),
			Namespace: ns, FlushID: flushID, FragIndex: i, FragCount: count,
			EnvLen: len(env), FragOffset: lo, Frag: env[lo:hi],
		})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, data)
	}
	return out
}

func TestUDPBatchAppliesThroughWriteGates(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	keys := udpKeys("udp-batch", 64)
	if got := s.udp.Process(udpBatch(t, DefaultNamespace, 1, 1, keys)); got != ingest.DropNone {
		t.Fatalf("batch refused: %v", got)
	}
	ns, err := s.lookup(DefaultNamespace)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !ns.mem.(shbf.Set).Contains(k) {
			t.Fatalf("key %q not in the membership filter", k)
		}
	}
	st := s.UDPStats()
	if st.AppliedBatch != 1 || st.ReceivedBatch != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Unknown namespace: applied nowhere, accounted as such.
	if got := s.udp.Process(udpBatch(t, "nowhere", 1, 2, keys[:1])); got != ingest.DropUnknownNamespace {
		t.Fatalf("unknown namespace: %v", got)
	}

	// Frozen namespace: the same refusal TCP answers with 409.
	if err := s.CreateNamespace(NamespaceConfig{Name: "fz"}); err != nil {
		t.Fatal(err)
	}
	fz, err := s.lookup("fz")
	if err != nil {
		t.Fatal(err)
	}
	fz.frozen.Store(true)
	if got := s.udp.Process(udpBatch(t, "fz", 1, 3, keys[:1])); got != ingest.DropFrozen {
		t.Fatalf("frozen namespace: %v", got)
	}

	// Rate quota charges per key: 64 keys against a burst of 1 sheds.
	if err := s.CreateNamespace(NamespaceConfig{Name: "slow", RatePerSec: 1, RateBurst: 1}); err != nil {
		t.Fatal(err)
	}
	if got := s.udp.Process(udpBatch(t, "slow", 1, 4, keys)); got != ingest.DropRate {
		t.Fatalf("rate-limited namespace: %v", got)
	}

	st = s.UDPStats()
	if st.Dropped[ingest.DropUnknownNamespace] != 1 ||
		st.Dropped[ingest.DropFrozen] != 1 ||
		st.Dropped[ingest.DropRate] != 1 {
		t.Fatalf("drop accounting = %v", st.Dropped)
	}
}

func TestUDPEnvelopeMergesBothKinds(t *testing.T) {
	cfg := testConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := s.lookup(DefaultNamespace)
	if err != nil {
		t.Fatal(err)
	}
	memSpec, assocSpec, multSpec := cfg.Specs()

	// A same-Spec membership filter built "at the edge", dumped, and
	// shipped as three fragments out of order.
	memF, err := shbf.New(memSpec)
	if err != nil {
		t.Fatal(err)
	}
	memKeys := udpKeys("udp-env-mem", 200)
	if err := memF.(shbf.Set).AddAll(memKeys); err != nil {
		t.Fatal(err)
	}
	env, err := shbf.AppendDump(nil, memF)
	if err != nil {
		t.Fatal(err)
	}
	frags := udpEnvelope(t, DefaultNamespace, 2, 1, 1, env, len(env)/3+1)
	for i := len(frags) - 1; i >= 0; i-- { // reversed: reassembly must not care
		if got := s.udp.Process(frags[i]); got != ingest.DropNone {
			t.Fatalf("fragment %d refused: %v", i, got)
		}
	}
	for _, k := range memKeys {
		if !ns.mem.(shbf.Set).Contains(k) {
			t.Fatalf("merged key %q missing", k)
		}
	}

	// A multiplicity envelope takes the same UDP path and lands in the
	// multiplicity filter of the trio: counts after merge ≥ the edge's.
	multF, err := shbf.New(multSpec)
	if err != nil {
		t.Fatal(err)
	}
	multKeys := udpKeys("udp-env-mult", 50)
	for _, k := range multKeys {
		for i := 0; i < 3; i++ {
			if err := multF.(shbf.Updatable).Insert(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	env, err = shbf.AppendDump(nil, multF)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range udpEnvelope(t, DefaultNamespace, 2, 10, 2, env, 60_000) {
		if got := s.udp.Process(f); got != ingest.DropNone {
			t.Fatalf("multiplicity fragment refused: %v", got)
		}
	}
	for _, k := range multKeys {
		if got := ns.mult.(shbf.Counter).Count(k); got < 3 {
			t.Fatalf("count(%q) = %d after merge, want ≥ 3", k, got)
		}
	}

	// Geometry mismatch is a merge drop, not a decode drop.
	memSpec.Seed++
	otherF, err := shbf.New(memSpec)
	if err != nil {
		t.Fatal(err)
	}
	env, err = shbf.AppendDump(nil, otherF)
	if err != nil {
		t.Fatal(err)
	}
	frags = udpEnvelope(t, DefaultNamespace, 2, 20, 3, env, len(env))
	if got := s.udp.Process(frags[0]); got != ingest.DropMerge {
		t.Fatalf("mismatched geometry: %v", got)
	}

	// A valid envelope of a kind no filter of the trio merges (an
	// association dump) decodes but cannot apply.
	assocF, err := shbf.New(assocSpec)
	if err != nil {
		t.Fatal(err)
	}
	env, err = shbf.AppendDump(nil, assocF)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range udpEnvelope(t, DefaultNamespace, 2, 30, 4, env, 60_000) {
		want := ingest.DropNone
		if i == len(env)/60_000 { // final fragment completes the merge attempt
			want = ingest.DropDecode
		}
		if got := s.udp.Process(f); got != want {
			t.Fatalf("unmergeable kind, fragment %d: %v, want %v", i, got, want)
		}
	}

	st := s.UDPStats()
	if st.AppliedEnvelope == 0 || st.MergeBytes == 0 {
		t.Fatalf("envelope accounting = %+v", st)
	}
}

func TestServeShBUOverLoopback(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.ServeShBU(pc) }()

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	keys := udpKeys("udp-loop", 32)
	if _, err := conn.Write(udpBatch(t, DefaultNamespace, 9, 1, keys)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.UDPStats().AppliedBatch == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("datagram never applied: %+v", s.UDPStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ns, err := s.lookup(DefaultNamespace)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !ns.mem.(shbf.Set).Contains(k) {
			t.Fatalf("key %q missing after loopback delivery", k)
		}
	}
	// Closing the listener ends the serve loop cleanly.
	pc.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeShBU returned %v on close", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeShBU did not return after close")
	}
}
