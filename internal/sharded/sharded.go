// Package sharded provides thread-safe, lock-striped wrappers around
// the core ShBF filters for the paper's wire-speed deployment scenario:
// multiple receive queues (goroutines) querying one logical filter.
//
// Each wrapper splits its bit budget across 2^p independent shards and
// routes every element by its one-pass digest (hashing.KeyDigest):
// the routing index is a few bits of the digest's high lane, while the
// shard filters derive their probe positions from the same digest
// through per-shard avalanche mixers — one hash pass per key covers
// routing and probing together. Shards are guarded by
// cache-line-padded RWMutexes, so concurrent queries proceed in
// parallel and only same-shard writers contend. Because routing is by
// hash, per-shard occupancy concentrates around n/shards and accuracy
// matches a monolithic filter of the same total size (each shard is an
// independent filter at the same bits-per-element).
//
// Three query kinds are covered, mirroring the paper's three
// instantiations of the framework:
//
//   - [Filter] wraps ShBF_M for membership (Add/Contains).
//   - [Association] wraps CShBF_A for two-set association queries
//     (InsertS1/InsertS2/DeleteS1/DeleteS2/Query).
//   - [Multiplicity] wraps CShBF_X for multi-set multiplicity queries
//     (Insert/Delete/Count).
//
// All three serialize with MarshalBinary/UnmarshalBinary (per-shard
// blobs under a common header), which is what the shbfd daemon's
// snapshot persistence is built on, and report per-shard occupancy via
// ShardStats for the daemon's /v1/stats endpoint.
package sharded

import (
	"shbf/internal/core"
	"shbf/internal/hashing"
)

// Filter is a concurrency-safe sharded ShBF_M.
type Filter struct {
	set set[*core.Membership]
}

// ShardStat reports one membership shard's occupancy and geometry, as
// surfaced by the serving layer's stats endpoint.
type ShardStat struct {
	// Bits is the shard filter's base array size m.
	Bits int
	// K is the bit positions per element.
	K int
	// MaxOffset is the shard filter's w̄.
	MaxOffset int
	// N is the number of elements routed to this shard.
	N int
	// FillRatio is the fraction of set bits.
	FillRatio float64
}

// New returns a filter with totalBits split across shardCount shards
// (rounded up to a power of two, minimum 1) and k bit positions per
// element. Options are forwarded to each shard's constructor; shards
// receive distinct derived seeds.
func New(totalBits, k, shardCount int, opts ...core.Option) (*Filter, error) {
	if err := core.CheckOptions(core.KindShardedMembership, opts...); err != nil {
		return nil, err
	}
	pow, perShard, err := roundPow2(totalBits, shardCount)
	if err != nil {
		return nil, err
	}
	base := core.ResolveSeed(opts...)
	s, err := newSet(pow, func(i int) (*core.Membership, error) {
		return core.NewMembership(perShard, k, append(opts, core.WithSeed(shardSeed(base, i)))...)
	})
	if err != nil {
		return nil, err
	}
	return &Filter{set: s}, nil
}

// Shards returns the number of shards.
func (f *Filter) Shards() int { return f.set.size() }

// Add inserts e: the key is digested once, routed on one lane of the
// digest, and encoded from the same digest. Safe for concurrent use.
func (f *Filter) Add(e []byte) {
	d := hashing.KeyDigest(e)
	s := f.set.forDigest(d)
	s.mu.Lock()
	s.f.AddDigest(d)
	s.mu.Unlock()
}

// Contains reports whether e may be in the set with a single hash pass
// (digest → route → probe). Safe for concurrent use; readers of
// different shards (and of the same shard) do not block each other.
func (f *Filter) Contains(e []byte) bool {
	d := hashing.KeyDigest(e)
	s := f.set.forDigest(d)
	s.mu.RLock()
	ok := s.f.ContainsDigest(d)
	s.mu.RUnlock()
	return ok
}

// AddAll inserts a whole batch, grouping keys by shard so each shard's
// write lock is taken once per batch instead of once per key; each key
// is digested once for both routing and encoding. Safe for concurrent
// use. The error is always nil (the signature matches the shared batch
// interface).
func (f *Filter) AddAll(keys [][]byte) error {
	return batchWrite(&f.set, keys, func(m *core.Membership, _ []byte, d hashing.Digest) error {
		m.AddDigest(d)
		return nil
	})
}

// ContainsAll queries a whole batch, grouping keys by shard so each
// shard's read lock is taken once per batch instead of once per key;
// each key is digested once for both routing and probing. Answers are
// written into dst (resized to len(keys)) at the keys' original
// positions. Safe for concurrent use.
func (f *Filter) ContainsAll(dst []bool, keys [][]byte) []bool {
	return batchRead(&f.set, dst, keys, func(m *core.Membership, _ []byte, d hashing.Digest) bool {
		return m.ContainsDigest(d)
	})
}

// N returns the total number of elements added across shards.
func (f *Filter) N() int {
	return f.set.sumLocked((*core.Membership).N)
}

// SizeBytes returns the combined bit-array footprint.
func (f *Filter) SizeBytes() int {
	return f.set.sumLocked((*core.Membership).SizeBytes)
}

// FillRatio returns the mean fill ratio across shards.
func (f *Filter) FillRatio() float64 {
	return f.set.meanLocked((*core.Membership).FillRatio)
}

// Reset clears all shards.
func (f *Filter) Reset() {
	for i := range f.set.shards {
		s := &f.set.shards[i]
		s.mu.Lock()
		s.f.Reset()
		s.mu.Unlock()
	}
}

// ShardStats returns a per-shard occupancy snapshot.
func (f *Filter) ShardStats() []ShardStat {
	out := make([]ShardStat, f.set.size())
	for i := range f.set.shards {
		s := &f.set.shards[i]
		s.mu.RLock()
		out[i] = ShardStat{
			Bits:      s.f.M(),
			K:         s.f.K(),
			MaxOffset: s.f.MaxOffset(),
			N:         s.f.N(),
			FillRatio: s.f.FillRatio(),
		}
		s.mu.RUnlock()
	}
	return out
}

// ForEachShard calls fn for every shard filter in index order, each
// under its shard's read lock — the frozen encoder's per-shard bit
// export. fn must not retain the filter or call back into f.
func (f *Filter) ForEachShard(fn func(i int, m *core.Membership)) {
	for i := range f.set.shards {
		s := &f.set.shards[i]
		s.mu.RLock()
		fn(i, s.f)
		s.mu.RUnlock()
	}
}

// Kind returns core.KindShardedMembership.
func (f *Filter) Kind() core.Kind { return core.KindShardedMembership }

// Spec returns the construction geometry: total bits across shards,
// the per-shard k and w̄, and the caller's base seed (recovered from
// shard 0's derived seed, whose derivation adds exactly 1 for i = 0).
func (f *Filter) Spec() core.Spec {
	inner := f.set.shards[0].f.Spec()
	return core.Spec{
		Kind:      core.KindShardedMembership,
		M:         inner.M * f.set.size(),
		K:         inner.K,
		MaxOffset: inner.MaxOffset,
		Shards:    f.set.size(),
		Seed:      inner.Seed - 1,
	}
}

// Stats returns the aggregate occupancy snapshot.
func (f *Filter) Stats() core.Stats {
	return core.Stats{
		Kind:      core.KindShardedMembership,
		N:         f.N(),
		SizeBytes: f.SizeBytes(),
		FillRatio: f.FillRatio(),
		Shards:    f.set.size(),
	}
}

// MarshalBinary implements encoding.BinaryMarshaler. Shards are
// serialized one at a time under their read locks, so the snapshot is
// per-shard consistent; pause writers for a global point-in-time cut.
func (f *Filter) MarshalBinary() ([]byte, error) {
	return appendSnapshot(nil, shardKindMembership, &f.set)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replacing f's
// state (including shard count and geometry) with the decoded filter.
func (f *Filter) UnmarshalBinary(data []byte) error {
	s, err := decodeSnapshot[core.Membership](data, shardKindMembership)
	if err != nil {
		return err
	}
	f.set = s
	return nil
}
