package hashing

import "fmt"

// Family is an ordered collection of independent hash functions
// h_1(.), …, h_n(.), the basic ingredient of every Bloom-filter variant
// in the paper. Each member is a full, independently seeded Hasher, so
// evaluating i functions costs i passes over the input — the cost model
// behind the paper's "ShBF_M halves the hash computations" claim.
type Family struct {
	hashers []Hasher
}

// NewFamily returns a family of n independent hash functions derived from
// seed. It panics if n is not positive: family sizes are static
// configuration, not runtime input.
func NewFamily(n int, seed uint64) *Family {
	if n <= 0 {
		panic(fmt.Sprintf("hashing: family size %d must be positive", n))
	}
	state := seed
	hs := make([]Hasher, n)
	for i := range hs {
		hs[i] = New(SplitMix64(&state))
	}
	return &Family{hashers: hs}
}

// Len returns the number of functions in the family.
func (f *Family) Len() int { return len(f.hashers) }

// Hasher returns the i-th function (0-based).
func (f *Family) Hasher(i int) Hasher { return f.hashers[i] }

// Sum64 evaluates the i-th function on data.
func (f *Family) Sum64(i int, data []byte) uint64 {
	return f.hashers[i].Sum64(data)
}

// Mod evaluates the i-th function on data modulo m.
func (f *Family) Mod(i int, data []byte, m int) int {
	return f.hashers[i].Mod(data, m)
}

// SumAll evaluates every function on data, appending to dst and returning
// it. Callers reuse dst across queries to avoid per-query allocation in
// the hot path.
func (f *Family) SumAll(data []byte, dst []uint64) []uint64 {
	dst = dst[:0]
	for _, h := range f.hashers {
		dst = append(dst, h.Sum64(data))
	}
	return dst
}

// ModAll evaluates the first k functions on data modulo m, appending to
// dst and returning it.
func (f *Family) ModAll(k int, data []byte, m int, dst []int) []int {
	dst = dst[:0]
	for i := 0; i < k; i++ {
		dst = append(dst, f.hashers[i].Mod(data, m))
	}
	return dst
}
