package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"shbf/internal/metrics"
	"shbf/internal/wire"
)

// parseScrape splits a Prometheus text scrape into exact series→value
// plus family→declared type, failing on malformed or duplicate lines.
func parseScrape(t *testing.T, text string) (series map[string]float64, types map[string]string) {
	t.Helper()
	series, types = map[string]float64{}, map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("family %s declared twice", parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		if _, dup := series[line[:i]]; dup {
			t.Fatalf("duplicate series %q", line[:i])
		}
		series[line[:i]] = v
	}
	return series, types
}

// splitSeries resolves one series key into its metric name and sorted
// label keys.
func splitSeries(t *testing.T, s string) (name string, labelKeys []string) {
	t.Helper()
	b := strings.IndexByte(s, '{')
	if b < 0 {
		return s, nil
	}
	name = s[:b]
	rest := s[b+1:]
	for len(rest) > 1 { // at least `}` remains
		eq := strings.IndexByte(rest, '=')
		if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
			t.Fatalf("malformed labels in %q", s)
		}
		labelKeys = append(labelKeys, rest[:eq])
		rest = rest[eq+2:]
		for i := 0; ; i++ {
			if i >= len(rest) {
				t.Fatalf("unterminated label value in %q", s)
			}
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				rest = rest[i+1:]
				break
			}
		}
		if len(rest) > 0 && rest[0] == ',' {
			rest = rest[1:]
		}
	}
	sort.Strings(labelKeys)
	return name, labelKeys
}

// goldenMetricSurface freezes the daemon's metric surface: family →
// type and label keys. Dashboards and alerts depend on these names —
// adding a metric means extending this table; renaming or dropping one
// is a breaking change and must fail here first.
var goldenMetricSurface = map[string]struct {
	typ  string
	keys string // sorted, comma-joined label keys ("" = none)
}{
	"shbf_build_info":                 {"gauge", "goversion,version"},
	"shbf_start_time_seconds":         {"gauge", ""},
	"shbf_last_snapshot_time_seconds": {"gauge", ""},
	"shbf_used_bits":                  {"gauge", ""},
	"shbf_max_total_bits":             {"gauge", ""},
	"shbf_namespaces":                 {"gauge", ""},
	"shbf_shbp_open_connections":      {"gauge", ""},
	"shbf_shbp_inflight_frames":       {"gauge", ""},
	"shbf_shed_total":                 {"counter", "reason"},
	"shbf_snapshots_total":            {"counter", ""},
	"shbf_requests_total":             {"counter", "op,status,transport"},
	"shbf_request_duration_seconds":   {"histogram", "op,transport"},
	"shbf_namespace_bits":             {"gauge", "namespace"},
	"shbf_namespace_n":                {"gauge", "filter,namespace"},
	"shbf_namespace_fill_ratio":       {"gauge", "filter,namespace"},
	"shbf_namespace_estimated_fpr":    {"gauge", "namespace"},
	"shbf_namespace_rotation_epoch":   {"gauge", "namespace"},
	"shbf_namespace_frozen":           {"gauge", "namespace"},
	"shbf_namespace_keys_total":       {"counter", "namespace,op"},
	"shbf_namespace_rotations_total":  {"counter", "namespace"},
	"shbf_namespace_shed_total":       {"counter", "namespace,reason"},

	"shbf_udp_datagrams_received_total": {"counter", "type"},
	"shbf_udp_datagrams_applied_total":  {"counter", "type"},
	"shbf_udp_datagrams_dropped_total":  {"counter", "reason"},
	"shbf_udp_reordered_total":          {"counter", ""},
	"shbf_udp_merge_bytes_total":        {"counter", ""},
	"shbf_udp_lost_datagrams":           {"gauge", ""},
	"shbf_udp_loss_ratio":               {"gauge", ""},
	"shbf_udp_sources":                  {"gauge", ""},
	"shbf_udp_assemblies":               {"gauge", ""},
	"shbf_udp_assemblies_evicted_total": {"counter", ""},
}

// goldenShBPOps and goldenHTTPOps freeze the request-counter op label
// vocabularies per transport (hard-coded on purpose: the server-side
// tables changing must fail this test, not silently re-derive it).
var goldenShBPOps = []string{
	"ping", "stats", "rotate",
	"namespace-create", "namespace-delete", "namespace-list", "cluster-map",
	"membership-add", "membership-contains", "membership-merge",
	"membership-dump", "freeze",
	"association-add", "association-remove", "association-query",
	"multiplicity-add", "multiplicity-remove", "multiplicity-count",
	"multiplicity-merge", "multiplicity-dump",
}

var goldenHTTPOps = []string{
	"membership-add", "membership-contains", "membership-merge", "membership-dump",
	"association-add", "association-remove", "association-query",
	"multiplicity-add", "multiplicity-remove", "multiplicity-count",
	"multiplicity-merge", "multiplicity-dump",
	"rotate", "stats", "freeze", "snapshot",
	"namespace-create", "namespace-delete", "namespace-list",
	"daemon-stats", "cluster-map", "healthz",
}

var goldenStatusNames = []string{
	"ok", "bad-request", "not-found", "conflict", "internal", "overloaded",
}

// TestMetricsSurfacePinned pins the scrape's families, types, label
// keys and request-counter label vocabulary, in both directions: every
// golden family must be served, and nothing outside the golden table
// may appear.
func TestMetricsSurfacePinned(t *testing.T) {
	gens := 2
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateNamespace(NamespaceConfig{Name: "w", WindowGenerations: &gens}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateNamespace(NamespaceConfig{Name: "q", RatePerSec: 1, RateBurst: 1}); err != nil {
		t.Fatal(err)
	}
	series, types := parseScrape(t, string(s.met.reg.Render()))

	for fam, want := range goldenMetricSurface {
		if got, ok := types[fam]; !ok {
			t.Errorf("family %s missing from the scrape", fam)
		} else if got != want.typ {
			t.Errorf("family %s is a %s, pinned as %s", fam, got, want.typ)
		}
	}
	for fam, typ := range types {
		if _, ok := goldenMetricSurface[fam]; !ok {
			t.Errorf("unpinned family %s (%s) in the scrape — extend goldenMetricSurface", fam, typ)
		}
	}

	for key := range series {
		name, keys := splitSeries(t, key)
		fam, want := name, ""
		switch {
		case strings.HasSuffix(name, "_bucket") && types[strings.TrimSuffix(name, "_bucket")] == "histogram":
			fam = strings.TrimSuffix(name, "_bucket")
			want = joinKeys(goldenMetricSurface[fam].keys, "le")
		case strings.HasSuffix(name, "_sum") && types[strings.TrimSuffix(name, "_sum")] == "histogram":
			fam = strings.TrimSuffix(name, "_sum")
			want = goldenMetricSurface[fam].keys
		case strings.HasSuffix(name, "_count") && types[strings.TrimSuffix(name, "_count")] == "histogram":
			fam = strings.TrimSuffix(name, "_count")
			want = goldenMetricSurface[fam].keys
		default:
			g, ok := goldenMetricSurface[name]
			if !ok {
				t.Errorf("series %s belongs to no pinned family", key)
				continue
			}
			want = g.keys
		}
		if got := strings.Join(keys, ","); got != want {
			t.Errorf("series %s has label keys %q, pinned %q", key, got, want)
		}
	}

	// The request-counter vocabulary: every (transport, op, status)
	// combination present exactly once, and nothing else.
	wantReqs := 0
	for _, tr := range []struct {
		transport string
		ops       []string
	}{{"shbp", goldenShBPOps}, {"http", goldenHTTPOps}} {
		for _, op := range tr.ops {
			for _, st := range goldenStatusNames {
				key := `shbf_requests_total{transport="` + tr.transport + `",op="` + op + `",status="` + st + `"}`
				if _, ok := series[key]; !ok {
					t.Errorf("missing request counter %s", key)
				}
				wantReqs++
			}
			durKey := `shbf_request_duration_seconds_count{transport="` + tr.transport + `",op="` + op + `"}`
			if _, ok := series[durKey]; !ok {
				t.Errorf("missing latency histogram for %s/%s", tr.transport, op)
			}
		}
	}
	gotReqs := 0
	for key := range series {
		if strings.HasPrefix(key, "shbf_requests_total{") {
			gotReqs++
		}
	}
	if gotReqs != wantReqs {
		t.Errorf("%d shbf_requests_total series, pinned %d", gotReqs, wantReqs)
	}
}

// joinKeys merges a comma-joined key set with extra keys, re-sorted.
func joinKeys(keys string, extra ...string) string {
	all := append(strings.Split(keys, ","), extra...)
	sort.Strings(all)
	return strings.Join(all, ",")
}

// TestMetricsTransportParity: the HTTP endpoint and the ShBP metrics
// op serve byte-identical scrapes — the op is uninstrumented and every
// exported time is absolute, so scraping changes nothing.
func TestMetricsTransportParity(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.defaultNamespaceAdd([][]byte{[]byte("parity-key")}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() ([]byte, string) {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics: %d", resp.StatusCode)
		}
		return body, resp.Header.Get("Content-Type")
	}

	viaHTTP, contentType := get()
	if contentType != metrics.ContentType {
		t.Fatalf("content type %q, want %q", contentType, metrics.ContentType)
	}
	var resp wire.Response
	var sc dispatchScratch
	s.handleFrame(&wire.Request{Op: wire.OpMetrics}, &resp, &sc)
	if resp.Status != wire.StatusOK {
		t.Fatalf("metrics op: status %d (%s)", resp.Status, resp.Msg)
	}
	if !bytes.Equal(viaHTTP, resp.Blob) {
		t.Fatalf("transports diverge:\nhttp: %d bytes\nshbp: %d bytes", len(viaHTTP), len(resp.Blob))
	}
	// And a scrape does not perturb the next scrape.
	again, _ := get()
	if !bytes.Equal(viaHTTP, again) {
		t.Fatal("a scrape changed the next scrape's bytes")
	}
}

// defaultNamespaceAdd writes keys through the public dispatch path so
// parity tests have non-zero counters without an HTTP client.
func (s *Server) defaultNamespaceAdd(keys [][]byte) error {
	var resp wire.Response
	var sc dispatchScratch
	s.handleFrame(&wire.Request{Op: wire.OpMembershipAdd, Keys: keys}, &resp, &sc)
	if resp.Status != wire.StatusOK {
		return &httpError{code: int(resp.Status), msg: resp.Msg}
	}
	return nil
}

// httpError adapts a wire status for test plumbing.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// TestMetricsDisabledByConfig: NoMetrics drops the endpoint and the
// op, and the serving paths run uninstrumented without crashing.
func TestMetricsDisabledByConfig(t *testing.T) {
	cfg := testConfig()
	cfg.NoMetrics = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.met != nil {
		t.Fatal("NoMetrics built a registry")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics with NoMetrics: %d, want 404", resp.StatusCode)
	}
	var wresp wire.Response
	var sc dispatchScratch
	s.handleFrame(&wire.Request{Op: wire.OpMetrics}, &wresp, &sc)
	if wresp.Status != wire.StatusNotFound {
		t.Fatalf("metrics op with NoMetrics: status %d, want not-found", wresp.Status)
	}
	// The instrumented paths must still serve.
	if err := s.defaultNamespaceAdd([][]byte{[]byte("uninstrumented")}); err != nil {
		t.Fatal(err)
	}
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz with NoMetrics: %d", r.StatusCode)
	}
}

// TestMetricsSnapshotInstruments: persisting a snapshot drives the
// snapshot counter and the absolute last-snapshot timestamp.
func TestMetricsSnapshotInstruments(t *testing.T) {
	cfg := testConfig()
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "snap.shbd")
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	series, _ := parseScrape(t, string(s.met.reg.Render()))
	if got := series["shbf_snapshots_total"]; got != 0 {
		t.Fatalf("snapshots_total = %v before any snapshot", got)
	}
	if got := series["shbf_last_snapshot_time_seconds"]; got != 0 {
		t.Fatalf("last_snapshot_time_seconds = %v before any snapshot", got)
	}

	resp, err := http.Post(ts.URL+"/v2/snapshot", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v2/snapshot: %d", resp.StatusCode)
	}

	series, _ = parseScrape(t, string(s.met.reg.Render()))
	if got := series["shbf_snapshots_total"]; got != 1 {
		t.Fatalf("snapshots_total = %v, want 1", got)
	}
	start := series["shbf_start_time_seconds"]
	if got := series["shbf_last_snapshot_time_seconds"]; got < start {
		t.Fatalf("last_snapshot_time_seconds = %v, before start time %v", got, start)
	}
	if got := series[`shbf_requests_total{transport="http",op="snapshot",status="ok"}`]; got != 1 {
		t.Fatalf("snapshot request counter = %v, want 1", got)
	}
}

// TestHTTPStatusIndexFolding pins the HTTP→wire status fold the
// request counters share with the client's httpStatusToWire.
func TestHTTPStatusIndexFolding(t *testing.T) {
	cases := map[int]int{
		200: wire.StatusOK, 204: wire.StatusOK, 302: wire.StatusOK,
		400: wire.StatusBadRequest, 404: wire.StatusNotFound,
		409: wire.StatusConflict, 429: wire.StatusOverloaded,
		500: wire.StatusInternal, 503: wire.StatusInternal, 418: wire.StatusInternal,
	}
	for code, want := range cases {
		if got := httpStatusIndex(code); got != want {
			t.Errorf("httpStatusIndex(%d) = %d, want %d", code, got, want)
		}
	}
	if got := statusIndex(200); got != wire.StatusInternal {
		t.Errorf("statusIndex clamp = %d, want internal", got)
	}
}
