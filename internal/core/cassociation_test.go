package core

import (
	"errors"
	"testing"
)

func mustCountingAssoc(t *testing.T, m, k int, opts ...Option) *CountingAssociation {
	t.Helper()
	a, err := NewCountingAssociation(m, k, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCountingAssociationValidation(t *testing.T) {
	if _, err := NewCountingAssociation(0, 4); err == nil {
		t.Error("accepted m=0")
	}
	if _, err := NewCountingAssociation(100, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := NewCountingAssociation(100, 4, WithMaxOffset(70)); err == nil {
		t.Error("accepted w̄=70")
	}
}

func TestCountingAssociationBasicRegions(t *testing.T) {
	a := mustCountingAssoc(t, 8000, 8, WithCounterWidth(8))
	e1, e2, e3 := []byte("only in s1"), []byte("in both s1 s2"), []byte("only in s2")

	if err := a.InsertS1(e1); err != nil {
		t.Fatal(err)
	}
	if err := a.InsertS1(e2); err != nil {
		t.Fatal(err)
	}
	if err := a.InsertS2(e2); err != nil {
		t.Fatal(err)
	}
	if err := a.InsertS2(e3); err != nil {
		t.Fatal(err)
	}

	if got := a.Query(e1); !got.Contains(RegionS1Only) {
		t.Errorf("Query(e1) = %v, truth S1−S2 missing", got)
	}
	if got := a.Query(e2); !got.Contains(RegionBoth) {
		t.Errorf("Query(e2) = %v, truth S1∩S2 missing", got)
	}
	if got := a.Query(e3); !got.Contains(RegionS2Only) {
		t.Errorf("Query(e3) = %v, truth S2−S1 missing", got)
	}
	if a.N1() != 2 || a.N2() != 2 {
		t.Fatalf("N1=%d N2=%d, want 2/2", a.N1(), a.N2())
	}
}

func TestCountingAssociationRegionMigration(t *testing.T) {
	// Insert e into S1 (region S1−S2), then into S2 (→ S1∩S2), then
	// delete from S1 (→ S2−S1), then delete from S2 (→ gone). At each
	// step the encoding must track the region.
	a := mustCountingAssoc(t, 8000, 8, WithCounterWidth(8))
	e := []byte("migrating element")

	if err := a.InsertS1(e); err != nil {
		t.Fatal(err)
	}
	if got := a.Query(e); !got.Contains(RegionS1Only) {
		t.Fatalf("after InsertS1: %v", got)
	}

	if err := a.InsertS2(e); err != nil {
		t.Fatal(err)
	}
	if got := a.Query(e); !got.Contains(RegionBoth) {
		t.Fatalf("after InsertS2: %v", got)
	}

	if err := a.DeleteS1(e); err != nil {
		t.Fatal(err)
	}
	if got := a.Query(e); !got.Contains(RegionS2Only) {
		t.Fatalf("after DeleteS1: %v", got)
	}

	if err := a.DeleteS2(e); err != nil {
		t.Fatal(err)
	}
	if got := a.Query(e); got != RegionNone {
		t.Fatalf("after full removal: %v, want RegionNone", got)
	}
	// With a single element removed the array must be all zero again.
	if a.bits.OnesCount() != 0 {
		t.Fatalf("%d bits still set after removing the only element", a.bits.OnesCount())
	}
	if a.counts.NonZero() != 0 {
		t.Fatal("counters not all zero after removing the only element")
	}
}

func TestCountingAssociationIdempotentInsert(t *testing.T) {
	a := mustCountingAssoc(t, 4000, 6, WithCounterWidth(8))
	e := []byte("x")
	a.InsertS1(e)
	before := a.bits.OnesCount()
	if err := a.InsertS1(e); err != nil { // set-semantics: no-op
		t.Fatal(err)
	}
	if a.bits.OnesCount() != before {
		t.Fatal("duplicate InsertS1 changed the encoding")
	}
	if a.N1() != 1 {
		t.Fatalf("N1 = %d, want 1", a.N1())
	}
}

func TestCountingAssociationDeleteAbsent(t *testing.T) {
	a := mustCountingAssoc(t, 4000, 6)
	if err := a.DeleteS1([]byte("ghost")); !errors.Is(err, ErrNotStored) {
		t.Fatalf("DeleteS1(absent) = %v, want ErrNotStored", err)
	}
	if err := a.DeleteS2([]byte("ghost")); !errors.Is(err, ErrNotStored) {
		t.Fatalf("DeleteS2(absent) = %v, want ErrNotStored", err)
	}
}

func TestCountingAssociationMatchesStaticBuild(t *testing.T) {
	// Dynamically building the same sets must answer queries with the
	// same no-false-negative guarantee as BuildAssociation.
	s1only, both, s2only := buildAssocSets(200, 100, 200, 9)
	a := mustCountingAssoc(t, 8000, 8, WithCounterWidth(8), WithSeed(3))

	for _, e := range s1only {
		if err := a.InsertS1(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range both {
		if err := a.InsertS1(e); err != nil {
			t.Fatal(err)
		}
		if err := a.InsertS2(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range s2only {
		if err := a.InsertS2(e); err != nil {
			t.Fatal(err)
		}
	}

	for _, e := range s1only {
		if !a.Query(e).Contains(RegionS1Only) {
			t.Fatal("S1−S2 truth missing from candidates")
		}
	}
	for _, e := range both {
		if !a.Query(e).Contains(RegionBoth) {
			t.Fatal("S1∩S2 truth missing from candidates")
		}
	}
	for _, e := range s2only {
		if !a.Query(e).Contains(RegionS2Only) {
			t.Fatal("S2−S1 truth missing from candidates")
		}
	}
}

func TestCountingAssociationChurn(t *testing.T) {
	// Insert/delete churn across regions must keep B and C consistent:
	// after removing everything the structure is empty.
	a := mustCountingAssoc(t, 6000, 6, WithCounterWidth(8))
	elems := genElements(200, 10)
	for i, e := range elems {
		switch i % 3 {
		case 0:
			a.InsertS1(e)
		case 1:
			a.InsertS2(e)
		default:
			a.InsertS1(e)
			a.InsertS2(e)
		}
	}
	for i, e := range elems {
		switch i % 3 {
		case 0:
			if err := a.DeleteS1(e); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := a.DeleteS2(e); err != nil {
				t.Fatal(err)
			}
		default:
			if err := a.DeleteS1(e); err != nil {
				t.Fatal(err)
			}
			if err := a.DeleteS2(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	if a.bits.OnesCount() != 0 || a.counts.NonZero() != 0 {
		t.Fatalf("structure not empty after churn: %d bits, %d counters",
			a.bits.OnesCount(), a.counts.NonZero())
	}
	if a.N1() != 0 || a.N2() != 0 {
		t.Fatalf("set sizes not zero: N1=%d N2=%d", a.N1(), a.N2())
	}
}

func BenchmarkCountingAssociationInsertS1(b *testing.B) {
	a, _ := NewCountingAssociation(1<<20, 8, WithCounterWidth(8))
	elems := genElements(65536, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.InsertS1(elems[i&65535])
	}
}
