// Package analytic implements every closed-form expression in the
// paper's analysis sections, used both to plot the theory-only figures
// (Figures 3 and 4) and to validate simulations against theory
// (Figures 7, 10(a), 11(a)).
//
// Conventions: m is the filter size in bits, n the number of stored
// elements, k the number of bit positions per element (a float64 so the
// optimizers can treat it continuously, as the paper does), w̄ the
// maximum offset value, and p = p′ = e^{−nk/m} the probability that a
// bit is still 0 after construction (Equation 3).
package analytic

import "math"

// P0 returns p′ = e^{−nk/m}, the probability a given bit remains 0 after
// inserting n elements with k bit positions each (Equation 3; identical
// for BF and ShBF_M because both set nk bits in expectation).
func P0(m, n int, k float64) float64 {
	return math.Exp(-float64(n) * k / float64(m))
}

// FPRBF returns the standard Bloom filter false-positive rate
// f_BF = (1 − e^{−nk/m})^k (Equation 8).
func FPRBF(m, n int, k float64) float64 {
	return math.Pow(1-P0(m, n, k), k)
}

// FPRShBFM returns the ShBF_M false-positive rate of Theorem 1
// (Equation 1):
//
//	f ≈ (1−p)^{k/2} · (1 − p + p²/(w̄−1))^{k/2},  p = e^{−nk/m}.
//
// As w̄ → ∞ this degenerates to Equation 8.
func FPRShBFM(m, n int, k float64, wbar int) float64 {
	p := P0(m, n, k)
	return math.Pow(1-p, k/2) * math.Pow(1-p+p*p/float64(wbar-1), k/2)
}

// PairPassProbability returns the probability that one (base, shifted)
// probe pair of a non-member passes: ρ = (1−p)(1−p+p²/(w̄−1)), so that
// Equation 1 reads f = ρ^{k/2}. Used for the expected-access model of
// Figure 8.
func PairPassProbability(m, n int, k float64, wbar int) float64 {
	p := P0(m, n, k)
	return (1 - p) * (1 - p + p*p/float64(wbar-1))
}

// OptimalKBF returns the k minimizing f_BF: k = (m/n)·ln 2 (Section
// 3.5).
func OptimalKBF(m, n int) float64 {
	return float64(m) / float64(n) * math.Ln2
}

// MinFPRBF returns the minimum f_BF ≈ 0.6185^{m/n} (Equation 9).
func MinFPRBF(m, n int) float64 {
	return math.Pow(0.5, OptimalKBF(m, n))
}

// OptimalKShBFM solves ∂f_ShBF_M/∂k = 0 numerically (the paper notes
// no closed form exists, Section 3.4.2) by golden-section search over
// the unimodal region. For w̄ = 57 the result is ≈ 0.7009·m/n.
func OptimalKShBFM(m, n, wbar int) float64 {
	f := func(k float64) float64 { return FPRShBFM(m, n, k, wbar) }
	lo, hi := 0.1, 3*OptimalKBF(m, n)+2
	return goldenMin(f, lo, hi, 1e-9)
}

// MinFPRShBFM returns the minimum of Equation 1 over k (Equation 7
// evaluates to ≈ 0.6204^{m/n} for w̄ = 57).
func MinFPRShBFM(m, n, wbar int) float64 {
	return FPRShBFM(m, n, OptimalKShBFM(m, n, wbar), wbar)
}

// goldenMin minimizes a unimodal f over [lo, hi] to the given x
// tolerance using golden-section search.
func goldenMin(f func(float64) float64, lo, hi, tol float64) float64 {
	const invPhi = 0.6180339887498949 // (√5 − 1)/2
	a, b := lo, hi
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
	}
	return (a + b) / 2
}

// FPRTShift returns the false-positive rate of the generalized t-shift
// ShBF_M (Equations 11–12 / 20–21). t = 1 reduces to Equation 1; as
// w̄ → ∞ it reduces to Equation 8 with effective k.
//
//	A = 1−p′, B = 1 − ((w̄−1−t)/(w̄−1))·p′
//	f_group = (1/t)·A²·(A^t − B^t)/(A − B) + p′·B^t
//	f = A^{k/(t+1)} · f_group^{k/(t+1)}
func FPRTShift(m, n int, k float64, t, wbar int) float64 {
	p := P0(m, n, k)
	if p >= 1 {
		return 0 // empty filter: nothing passes
	}
	a := 1 - p
	b := 1 - float64(wbar-1-t)/float64(wbar-1)*p
	tf := float64(t)
	var fGroup float64
	if math.Abs(a-b) < 1e-15 {
		// A → B limit: (A^t − B^t)/(A−B) → t·A^{t−1}.
		fGroup = a*a*math.Pow(a, tf-1) + p*math.Pow(b, tf)
	} else {
		fGroup = (1/tf)*a*a*(math.Pow(a, tf)-math.Pow(b, tf))/(a-b) + p*math.Pow(b, tf)
	}
	groups := k / float64(t+1)
	return math.Pow(a, groups) * math.Pow(fGroup, groups)
}
