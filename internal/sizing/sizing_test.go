package sizing

import (
	"math"
	"math/rand"
	"testing"

	"shbf/internal/core"
	"shbf/internal/window"
)

func TestMembershipMeetsTarget(t *testing.T) {
	for _, target := range []float64{0.05, 0.01, 0.001, 0.0001} {
		plan, err := Membership(10000, target, core.DefaultMaxOffset)
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		if plan.PredictedFPR > target {
			t.Fatalf("target %v: predicted %v exceeds target", target, plan.PredictedFPR)
		}
		if plan.K%2 != 0 || plan.K < 2 {
			t.Fatalf("target %v: k = %d not even ≥ 2", target, plan.K)
		}
		// Sanity: bits/element in the expected regime (≈1.44·log2(1/f)).
		ideal := 1.44 * math.Log2(1/target)
		if plan.BitsPerElem > ideal*1.6 {
			t.Fatalf("target %v: %0.1f bits/elem vs ideal %0.1f — oversized", target, plan.BitsPerElem, ideal)
		}
	}
}

func TestMembershipPlanIsEmpirical(t *testing.T) {
	// A filter built from the plan must achieve the target in practice.
	const n = 5000
	const target = 0.01
	plan, err := Membership(n, target, core.DefaultMaxOffset)
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewMembership(plan.M, plan.K, core.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		e := make([]byte, 13)
		rng.Read(e)
		e[0], e[1], e[12] = byte(i), byte(i>>8), 0
		f.Add(e)
	}
	fp, probes := 0, 100000
	for i := 0; i < probes; i++ {
		e := make([]byte, 13)
		rng.Read(e)
		e[0], e[1], e[12] = byte(i), byte(i>>8), 0xFF
		if f.Contains(e) {
			fp++
		}
	}
	got := float64(fp) / float64(probes)
	if got > target*1.4 {
		t.Fatalf("measured FPR %v vs target %v", got, target)
	}
}

func TestMembershipValidation(t *testing.T) {
	cases := []struct {
		n    int
		fpr  float64
		wbar int
	}{
		{0, 0.01, 57}, {100, 0, 57}, {100, 1, 57}, {100, 0.01, 1}, {100, 0.01, 65},
	}
	for _, c := range cases {
		if _, err := Membership(c.n, c.fpr, c.wbar); err == nil {
			t.Errorf("Membership(%d, %v, %d) accepted invalid input", c.n, c.fpr, c.wbar)
		}
	}
}

func TestAssociationMeetsTarget(t *testing.T) {
	for _, target := range []float64{0.9, 0.99, 0.999} {
		plan, err := Association(50000, target)
		if err != nil {
			t.Fatal(err)
		}
		if plan.PredictedClear < target {
			t.Fatalf("target %v: predicted %v below target", target, plan.PredictedClear)
		}
		if plan.M < 50000 {
			t.Fatalf("target %v: m = %d implausibly small", target, plan.M)
		}
	}
	if _, err := Association(0, 0.9); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := Association(100, 1.5); err == nil {
		t.Error("accepted target > 1")
	}
}

func TestAssociationPaperOperatingPoint(t *testing.T) {
	// k=10 gives (1−0.5^10)² ≈ 0.998 (Section 4.4's example); asking for
	// 0.998 must therefore produce k ≤ 10.
	plan, err := Association(10000, 0.998)
	if err != nil {
		t.Fatal(err)
	}
	if plan.K > 10 {
		t.Fatalf("k = %d, paper example achieves 0.998 at k = 10", plan.K)
	}
}

func TestMultiplicityMeetsTarget(t *testing.T) {
	for _, target := range []float64{0.9, 0.99} {
		plan, err := Multiplicity(100000, 57, target)
		if err != nil {
			t.Fatal(err)
		}
		if plan.PredictedCR < target {
			t.Fatalf("target %v: predicted %v below target", target, plan.PredictedCR)
		}
	}
	if _, err := Multiplicity(0, 57, 0.9); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := Multiplicity(100, 65, 0.9); err == nil {
		t.Error("accepted c=65")
	}
	if _, err := Multiplicity(100, 57, 0); err == nil {
		t.Error("accepted target=0")
	}
}

func TestMultiplicityFigure11Regime(t *testing.T) {
	// The paper's Figure 11 uses 1.5× optimal memory at k=8 and achieves
	// CR ≈ 0.98+ for the mixed workload; requiring CR 0.95 must not cost
	// wildly more than that regime (≈ 17 bits/element).
	plan, err := Multiplicity(100000, 57, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if plan.BitsPerElem > 30 {
		t.Fatalf("%0.1f bits/elem — oversized vs the paper's ≈17", plan.BitsPerElem)
	}
}

func TestWindowPlanMeetsTarget(t *testing.T) {
	for _, target := range []float64{0.05, 0.001, 1e-6} {
		for _, g := range []int{2, 4, 8} {
			plan, err := Window(10000, g, target, core.DefaultMaxOffset)
			if err != nil {
				t.Fatalf("g=%d target=%v: %v", g, target, err)
			}
			if plan.PredictedWindowFPR > target {
				t.Fatalf("g=%d target=%v: predicted window FPR %v exceeds target",
					g, target, plan.PredictedWindowFPR)
			}
			if plan.TotalBits != g*plan.Generation.M {
				t.Fatalf("g=%d: total bits %d ≠ %d×%d", g, plan.TotalBits, g, plan.Generation.M)
			}
			// The per-generation budget must be the split target, not the
			// whole target (the manual mistake the planner replaces), and
			// not absurdly tighter than target/g.
			if plan.Generation.PredictedFPR > target {
				t.Fatalf("g=%d: per-generation FPR %v above the window target", g, plan.Generation.PredictedFPR)
			}
			if lo := target / float64(g) / 4; plan.Generation.PredictedFPR < lo {
				t.Fatalf("g=%d target=%v: per-generation FPR %v oversized (budget ≈ %v)",
					g, target, plan.Generation.PredictedFPR, target/float64(g))
			}
			ws := plan.WindowSpec(0)
			if ws.Kind != core.KindWindowMembership || ws.Generations != g || ws.M != plan.Generation.M {
				t.Fatalf("g=%d: window spec %+v inconsistent with plan", g, ws)
			}
			if err := ws.Validate(); err != nil {
				t.Fatalf("g=%d: window spec invalid: %v", g, err)
			}
		}
	}
	if _, err := Window(1000, 1, 0.01, core.DefaultMaxOffset); err == nil {
		t.Error("accepted a one-generation window")
	}
	if _, err := Window(1000, 4, 0, core.DefaultMaxOffset); err == nil {
		t.Error("accepted target=0")
	}
}

func TestWindowPlanIsEmpirical(t *testing.T) {
	// A ring built from the plan, driven at nPerTick keys per rotation,
	// must meet the window target in steady state.
	const nPerTick, g = 5000, 3
	const target = 0.01
	plan, err := Window(nPerTick, g, target, core.DefaultMaxOffset)
	if err != nil {
		t.Fatal(err)
	}
	spec := plan.WindowSpec(0)
	spec.Seed = 1
	w, err := window.NewMembership(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	key := func(tag byte, i int) []byte {
		e := make([]byte, 13)
		rng.Read(e)
		e[0], e[1], e[12] = byte(i), byte(i>>8), tag
		return e
	}
	// 2G ticks reach steady state: every generation carries one tick's
	// load.
	for tick := 0; tick < 2*g; tick++ {
		for i := 0; i < nPerTick; i++ {
			w.Add(key(0, i))
		}
		if err := w.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	fp, probes := 0, 100000
	for i := 0; i < probes; i++ {
		if w.Contains(key(0xFF, i)) {
			fp++
		}
	}
	got := float64(fp) / float64(probes)
	if got > target*1.5 {
		t.Fatalf("measured window FPR %v vs target %v", got, target)
	}
}
