package client

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"shbf"
	"shbf/internal/cluster"
	"shbf/internal/hashing"
	"shbf/internal/wire"
)

// Cluster-mode client: one logical handle over N shbfd nodes. The
// cluster map (internal/cluster) partitions the 64-bit digest ring
// across nodes; every batch is split by owner — each key's one-pass
// digest high lane looked up against the map's ranges, the same lane
// whose low bits route to lock-striped shards inside a node — fanned
// out to the owner nodes' per-node [Client]s in parallel, and the
// per-node answers reassembled in the batch's original key order.
// Reads route to each range's primary (first owner); writes go to all
// R owners, which is what keeps replicas convergent enough for the
// envelope-merge anti-entropy to close the gaps (see
// [Namespace.Merge]).
//
// Reads fail over: when a range's primary is unreachable, times out,
// or sheds the request ([IsOverloaded]), the sub-batch is re-sent to
// the next owner in the range's replica list, walking all R owners
// before the failure surfaces. Union replication makes replica reads
// superset-safe — every acked write reached all R owners, so any
// replica answers at least what the primary would (a Bloom filter
// never loses bits; a lagging replica can only be missing unacked
// writes). Writes never fail over: they already address every owner,
// and a per-node failure is reported with its resume point.

// ClusterMap is the cluster document: nodes plus hash-range ownership
// (see shbf/internal/cluster for the format and invariants).
type ClusterMap = cluster.Map

// ClusterNode is one node entry in a ClusterMap.
type ClusterNode = cluster.Node

// ClusterRange is one hash-range entry in a ClusterMap.
type ClusterRange = cluster.Range

// ClusterMap fetches the daemon's cluster map (GET /v2/cluster / the
// cluster-map op). A daemon started without -cluster-file reports
// not-found (IsNotFound).
func (c *Client) ClusterMap() (*ClusterMap, error) {
	resp, err := c.do(&wire.Request{Op: wire.OpClusterMap})
	if err != nil {
		return nil, err
	}
	m, err := cluster.Decode(resp.Blob)
	if err != nil {
		return nil, fmt.Errorf("client: decoding cluster map: %w", err)
	}
	return m, nil
}

// NodeError is one node's failure inside a fanned-out cluster call.
type NodeError struct {
	// Node is the failing node's ID in the cluster map.
	Node string
	// Indices are the original batch positions of the keys routed to
	// this node, in the order they were sent — the node's sub-batch is
	// keys[Indices[0]], keys[Indices[1]], ... of the caller's batch.
	Indices []int
	// Applied is the node-reported mid-batch split point within the
	// node's own sub-batch (daemon-reported failures only): sub-batch
	// updates before it stay applied, so the caller resumes this node
	// from keys[Indices[Applied:]]. Other nodes' sub-batches are
	// reported independently — a fan-out has no global split point.
	Applied uint64
	// Err is the underlying failure (*Error for daemon-reported ones).
	Err error
}

// Error implements the error interface.
func (e *NodeError) Error() string {
	return fmt.Sprintf("node %s (%d keys, %d applied): %v", e.Node, len(e.Indices), e.Applied, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *NodeError) Unwrap() error { return e.Err }

// ClusterError aggregates the per-node failures of one fanned-out
// call. Nodes absent from Errs completed their sub-batches. It unwraps
// into every node's error, so IsConflict and IsNotFound see through it
// to the daemon-reported statuses.
type ClusterError struct {
	// Errs holds one entry per failed node, ordered by node ID.
	Errs []*NodeError
}

// Error implements the error interface.
func (e *ClusterError) Error() string {
	msgs := make([]string, len(e.Errs))
	for i, ne := range e.Errs {
		msgs[i] = ne.Error()
	}
	return fmt.Sprintf("client: %d cluster node(s) failed: %s",
		len(e.Errs), strings.Join(msgs, "; "))
}

// Unwrap exposes every node's failure to errors.Is/As.
func (e *ClusterError) Unwrap() []error {
	errs := make([]error, len(e.Errs))
	for i, ne := range e.Errs {
		errs[i] = ne
	}
	return errs
}

// Cluster is a routing client over every node of one cluster map. Safe
// for concurrent use (each per-node Client serializes its own
// connection; run several Clusters for more connection parallelism).
type Cluster struct {
	m     *cluster.Map
	nodes map[string]*Client
	stats *clusterStats // shared by every derived router; see Stats
}

// DialCluster bootstraps from one seed node: it dials the seed with
// [Dial], fetches the cluster map any node serves, then sets up a
// per-node client for every node in the map (ShBP via the node's addr;
// http_addr-only nodes over HTTP). Only the seed must be reachable:
// per-node connections are established lazily on first use, so a node
// that is down at dial time degrades to a NodeError on the batches it
// owns rather than failing the whole fleet dial.
func DialCluster(seed string) (*Cluster, error) {
	c, err := Dial(seed)
	if err != nil {
		return nil, err
	}
	m, err := c.ClusterMap()
	c.Close()
	if err != nil {
		return nil, err
	}
	return DialClusterMap(m)
}

// DialClusterMap builds the router over a known map (e.g. loaded from
// the operator's -cluster-file with cluster.LoadFile). No connections
// are made here — each node is dialed on its first round trip.
func DialClusterMap(m *ClusterMap) (*Cluster, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	nodes := make(map[string]*Client, len(m.Nodes))
	for _, n := range m.Nodes {
		if n.Addr != "" {
			nodes[n.ID] = dialBinaryLazy(strings.TrimPrefix(n.Addr, "shbp://"))
		} else {
			nodes[n.ID] = &Client{t: newHTTPTransport("http://"+n.HTTPAddr, nil), stats: new(clientStats)}
		}
	}
	return &Cluster{m: m, nodes: nodes, stats: newClusterStats(m)}, nil
}

// failover reports whether a read sub-batch's failure is worth
// re-sending to the next replica: transport failures (unreachable,
// reset, a per-call deadline that still leaves context budget) and
// daemon overload qualify; deterministic daemon answers and an
// exhausted caller context do not.
func failover(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var e *Error
	if errors.As(err, &e) {
		return e.Status == wire.StatusOverloaded
	}
	return true // transport-level failure
}

// WithContext returns a router over the same per-node connections
// whose calls are bounded by ctx (see [Client.WithContext]). The
// original router is unchanged.
func (cl *Cluster) WithContext(ctx context.Context) *Cluster {
	nodes := make(map[string]*Client, len(cl.nodes))
	for id, c := range cl.nodes {
		nodes[id] = c.WithContext(ctx)
	}
	return &Cluster{m: cl.m, nodes: nodes, stats: cl.stats}
}

// WithRetry returns a router over the same per-node connections whose
// per-node calls retry per p (see [Client.WithRetry]). Retries happen
// against one node before read failover moves to the next replica.
func (cl *Cluster) WithRetry(p RetryPolicy) *Cluster {
	nodes := make(map[string]*Client, len(cl.nodes))
	for id, c := range cl.nodes {
		nodes[id] = c.WithRetry(p)
	}
	return &Cluster{m: cl.m, nodes: nodes, stats: cl.stats}
}

// Map returns the cluster map the router was built from.
func (cl *Cluster) Map() *ClusterMap { return cl.m }

// Client returns the per-node client for one node ID (nil for unknown
// IDs) — the direct line tests and anti-entropy tooling use to talk to
// one replica.
func (cl *Cluster) Client(nodeID string) *Client { return cl.nodes[nodeID] }

// Close closes every per-node client.
func (cl *Cluster) Close() error {
	var first error
	for _, c := range cl.nodes {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CreateNamespace creates a tenant on every node (cluster batches
// address one namespace, so it must exist everywhere). Partial failure
// is a ClusterError; already-exists conflicts on some nodes are
// reported, letting the caller treat "exists everywhere" as success.
func (cl *Cluster) CreateNamespace(cfg NamespaceConfig) error {
	return cl.fan(cl.allNodes(), func(c *Client, _ *nodeBatch) error {
		return c.CreateNamespace(cfg)
	})
}

// DeleteNamespace deletes a tenant on every node.
func (cl *Cluster) DeleteNamespace(name string) error {
	return cl.fan(cl.allNodes(), func(c *Client, _ *nodeBatch) error {
		return c.DeleteNamespace(name)
	})
}

// Namespace returns the routing handle on one tenant ("" = default).
func (cl *Cluster) Namespace(name string) *ClusterNamespace {
	if name == "" {
		name = "default"
	}
	return &ClusterNamespace{cl: cl, name: name}
}

// nodeBatch is one node's share of a split batch.
type nodeBatch struct {
	node   string
	owners []string // read batches: the full replica list, failover order
	idx    []int    // original positions of this node's keys
	keys   [][]byte
	counts []int // aligned per-key counts (multiplicity adds)
}

// split groups a batch by owner node: each key's digest high lane
// selects its range, and the key joins the sub-batch of the primary
// owner (replicate=false: reads) or of every owner (replicate=true:
// writes, so all R replicas take the update). Sub-batches preserve the
// batch's relative key order; idx maps each sub-batch position back to
// the original.
//
// Read batches are grouped by the range's full owner tuple, not just
// its primary, so every key in a sub-batch shares one failover order
// (two ranges with the same primary but different replicas stay in
// separate sub-batches and fail over independently).
func (cl *Cluster) split(keys [][]byte, counts []int, replicate bool) []*nodeBatch {
	byNode := make(map[string]*nodeBatch)
	var order []string
	for i, k := range keys {
		owners := cl.m.RangeFor(hashing.KeyDigest(k).Hi).Owners
		if !replicate {
			tuple := strings.Join(owners, "\x00")
			b := byNode[tuple]
			if b == nil {
				b = &nodeBatch{node: owners[0], owners: owners}
				byNode[tuple] = b
				order = append(order, tuple)
			}
			b.idx = append(b.idx, i)
			b.keys = append(b.keys, k)
			continue
		}
		for _, id := range owners {
			b := byNode[id]
			if b == nil {
				b = &nodeBatch{node: id}
				byNode[id] = b
				order = append(order, id)
			}
			b.idx = append(b.idx, i)
			b.keys = append(b.keys, k)
			if counts != nil {
				b.counts = append(b.counts, counts[i])
			}
		}
	}
	out := make([]*nodeBatch, len(order))
	for i, id := range order {
		out[i] = byNode[id]
	}
	return out
}

// allNodes builds one empty batch per node, for control-plane fan-outs.
func (cl *Cluster) allNodes() []*nodeBatch {
	out := make([]*nodeBatch, 0, len(cl.m.Nodes))
	for _, n := range cl.m.Nodes {
		out = append(out, &nodeBatch{node: n.ID})
	}
	return out
}

// fan runs one call per sub-batch concurrently and aggregates the
// failures into a ClusterError (nil when every node succeeded). Calls
// for different nodes touch disjoint result indices, so result
// reassembly inside the callbacks needs no locking.
//
// A sub-batch carrying a replica list (reads; see split) fails over:
// owners are tried in order, moving on while the failure is worth a
// replica (node unreachable, round trip timed out with context budget
// left, or the node shed the request). Deterministic daemon answers —
// not-found, bad request — and exhausted context budgets surface
// immediately; a replica would answer the same or the caller is out
// of time.
func (cl *Cluster) fan(batches []*nodeBatch, call func(*Client, *nodeBatch) error) error {
	errs := make([]*NodeError, len(batches))
	var wg sync.WaitGroup
	for i, b := range batches {
		wg.Add(1)
		go func(i int, b *nodeBatch) {
			defer wg.Done()
			run := func(id string) error {
				err := call(cl.nodes[id], b)
				if err != nil {
					cl.stats.nodeError(id)
				}
				return err
			}
			node, err := b.node, run(b.node)
			for _, replica := range b.owners {
				if err == nil || replica == node || !failover(err) {
					continue
				}
				cl.stats.failover()
				node, err = replica, run(replica)
			}
			if err != nil {
				ne := &NodeError{Node: node, Indices: b.idx, Err: err}
				var de *Error
				if errors.As(err, &de) {
					ne.Applied = de.Applied
				}
				errs[i] = ne
			}
		}(i, b)
	}
	wg.Wait()
	var failed []*NodeError
	for _, ne := range errs {
		if ne != nil {
			failed = append(failed, ne)
		}
	}
	if len(failed) == 0 {
		return nil
	}
	sort.Slice(failed, func(i, j int) bool { return failed[i].Node < failed[j].Node })
	return &ClusterError{Errs: failed}
}

// ClusterNamespace routes one tenant's batches across the cluster. The
// membership surface satisfies shbf.Set, so query code written against
// the library (or against a single-daemon [Set]) runs unchanged over N
// nodes.
type ClusterNamespace struct {
	cl   *Cluster
	name string
	err  errBox
}

var _ shbf.Set = (*ClusterNamespace)(nil)

// Name returns the namespace this handle addresses.
func (ns *ClusterNamespace) Name() string { return ns.name }

// AddAll inserts a batch: keys split by owner range and each sub-batch
// written to all R owner nodes in parallel. On partial failure the
// ClusterError reports, per failed node, which original key positions
// were routed there and the node's applied split point.
func (ns *ClusterNamespace) AddAll(keys [][]byte) error {
	return ns.cl.fan(ns.cl.split(keys, nil, true), func(c *Client, b *nodeBatch) error {
		return c.Namespace(ns.name).Set().AddAll(b.keys)
	})
}

// Check answers membership for a batch: keys split by owner range,
// each sub-batch queried on its primary node in parallel, answers
// reassembled in original key order.
func (ns *ClusterNamespace) Check(keys [][]byte) ([]bool, error) {
	out := make([]bool, len(keys))
	err := ns.cl.fan(ns.cl.split(keys, nil, false), func(c *Client, b *nodeBatch) error {
		res, err := c.Namespace(ns.name).Set().Check(b.keys)
		if err != nil {
			return err
		}
		for j, i := range b.idx {
			out[i] = res[j]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ContainsAll is [ClusterNamespace.Check] in the library's dst shape
// (false per key on failure, recorded in [ClusterNamespace.Err]).
func (ns *ClusterNamespace) ContainsAll(dst []bool, keys [][]byte) []bool {
	res, err := ns.Check(keys)
	if err != nil {
		ns.err.record(err)
		res = make([]bool, len(keys))
	}
	return append(dst, res...)
}

// Add inserts one key on all its owner nodes, recording any error
// ([ClusterNamespace.Err]).
func (ns *ClusterNamespace) Add(e []byte) { ns.err.record(ns.AddAll([][]byte{e})) }

// Contains answers one key from its primary node (false on failure,
// recorded in [ClusterNamespace.Err]).
func (ns *ClusterNamespace) Contains(e []byte) bool {
	res, err := ns.Check([][]byte{e})
	if err != nil {
		ns.err.record(err)
		return false
	}
	return res[0]
}

// CounterAdd increments multiplicities across the cluster: counts[i]
// increments for keys[i] (nil counts = one each), written to all R
// owner nodes. Per-node conflicts (count overflow) surface with the
// node's applied split point in the ClusterError.
func (ns *ClusterNamespace) CounterAdd(keys [][]byte, counts []int) error {
	if counts != nil && len(counts) != len(keys) {
		return fmt.Errorf("client: %d counts for %d keys", len(counts), len(keys))
	}
	return ns.cl.fan(ns.cl.split(keys, counts, true), func(c *Client, b *nodeBatch) error {
		_, err := c.Namespace(ns.name).do(&wire.Request{
			Op: wire.OpMultiplicityAdd, KeyWidth: keyWidth(b.keys), Keys: b.keys, Counts: b.counts})
		return err
	})
}

// Counts answers multiplicities for a batch from each key's primary
// node, reassembled in original key order.
func (ns *ClusterNamespace) Counts(keys [][]byte) ([]int, error) {
	out := make([]int, len(keys))
	err := ns.cl.fan(ns.cl.split(keys, nil, false), func(c *Client, b *nodeBatch) error {
		res, err := c.Namespace(ns.name).Counter().Counts(b.keys)
		if err != nil {
			return err
		}
		for j, i := range b.idx {
			out[i] = res[j]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CountAll is [ClusterNamespace.Counts] in the library's dst shape
// (0 per key on failure, recorded in [ClusterNamespace.Err]).
func (ns *ClusterNamespace) CountAll(dst []int, keys [][]byte) []int {
	res, err := ns.Counts(keys)
	if err != nil {
		ns.err.record(err)
		res = make([]int, len(keys))
	}
	return append(dst, res...)
}

// Classify answers association regions for a batch from each key's
// primary node, reassembled in original key order.
func (ns *ClusterNamespace) Classify(keys [][]byte) ([]shbf.Region, error) {
	out := make([]shbf.Region, len(keys))
	err := ns.cl.fan(ns.cl.split(keys, nil, false), func(c *Client, b *nodeBatch) error {
		res, err := c.Namespace(ns.name).Associator().Classify(b.keys)
		if err != nil {
			return err
		}
		for j, i := range b.idx {
			out[i] = res[j]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// QueryAll is [ClusterNamespace.Classify] in the library's dst shape
// (the empty region per key on failure, recorded in
// [ClusterNamespace.Err]).
func (ns *ClusterNamespace) QueryAll(dst []shbf.Region, keys [][]byte) []shbf.Region {
	res, err := ns.Classify(keys)
	if err != nil {
		ns.err.record(err)
		res = make([]shbf.Region, len(keys))
	}
	return append(dst, res...)
}

// Err returns the first error recorded by the error-less interface
// methods (nil if none).
func (ns *ClusterNamespace) Err() error { return ns.err.get() }
