package window

import (
	"time"

	"shbf/internal/core"
	"shbf/internal/hashing"
)

// Association is the sliding-window two-set association filter: a
// generation ring of CShBF_A filters. InsertS1/InsertS2 write the head
// generation; Query unions the candidate-region masks of every
// generation, so an element keeps its sound candidate set — never a
// wrong region — for as long as any generation remembers it, and a key
// seen in S1 during one tick and S2 during a later one reports both
// candidates, which is exactly the in-window truth. Not safe for
// concurrent use — see sharded.WindowAssociation.
type Association struct {
	rot      *Rotator[*core.CountingAssociation]
	dscratch []hashing.Digest
}

// NewAssociation builds the window from its Spec (Kind
// KindWindowAssociation; M, K, MaxOffset, CounterWidth and Seed
// describe each CShBF_A generation, Generations the ring length, Tick
// the rotation period).
func NewAssociation(spec core.Spec) (*Association, error) {
	if err := checkSpec(spec, core.KindWindowAssociation); err != nil {
		return nil, err
	}
	fresh := func() (*core.CountingAssociation, error) {
		return core.NewCountingAssociation(spec.M, spec.K, spec.Options()...)
	}
	// CShBF_A (bits + counters + two backing tables) has no in-place
	// Reset; a retired generation is rebuilt from spec.
	recycle := func(*core.CountingAssociation) (*core.CountingAssociation, error) {
		return fresh()
	}
	rot, err := NewRotator(spec.Generations, spec.Tick, fresh, recycle)
	if err != nil {
		return nil, err
	}
	return &Association{rot: rot}, nil
}

// InsertS1 records e ∈ S1 in the head generation.
func (w *Association) InsertS1(e []byte) error { return w.rot.Head().InsertS1(e) }

// InsertS2 records e ∈ S2 in the head generation.
func (w *Association) InsertS2(e []byte) error { return w.rot.Head().InsertS2(e) }

// InsertS1Digest is InsertS1 for an already-digested key.
func (w *Association) InsertS1Digest(e []byte, d hashing.Digest) error {
	return w.rot.Head().InsertS1Digest(e, d)
}

// InsertS2Digest is InsertS2 for an already-digested key.
func (w *Association) InsertS2Digest(e []byte, d hashing.Digest) error {
	return w.rot.Head().InsertS2Digest(e, d)
}

// DeleteS1 removes e from S1 in the head generation — it undoes an
// in-tick insert; memberships that have rotated into older generations
// are immutable and expire with their generation. ErrNotStored if the
// head does not hold e in S1.
func (w *Association) DeleteS1(e []byte) error { return w.rot.Head().DeleteS1(e) }

// DeleteS2 removes e from S2 in the head generation; see DeleteS1.
func (w *Association) DeleteS2(e []byte) error { return w.rot.Head().DeleteS2(e) }

// DeleteS1Digest is DeleteS1 for an already-digested key.
func (w *Association) DeleteS1Digest(e []byte, d hashing.Digest) error {
	return w.rot.Head().DeleteS1Digest(e, d)
}

// DeleteS2Digest is DeleteS2 for an already-digested key.
func (w *Association) DeleteS2Digest(e []byte, d hashing.Digest) error {
	return w.rot.Head().DeleteS2Digest(e, d)
}

// Query returns the union of every generation's candidate-region mask
// for e: one digest pass, then the cached digest probes each
// generation. RegionNone means no generation holds e — a definite
// in-window non-member of both sets.
func (w *Association) Query(e []byte) core.Region {
	return w.QueryDigest(hashing.KeyDigest(e))
}

// QueryDigest answers Query for the element whose digest is d.
func (w *Association) QueryDigest(d hashing.Digest) core.Region {
	var r core.Region
	for _, g := range w.rot.gens {
		r |= g.QueryDigest(d)
	}
	return r
}

// QueryAll classifies a whole batch: keys are digested once into the
// window's scratch, then each cached digest unions across the ring.
// Masks land in dst (resized to len(keys)); steady-state batches do
// not allocate.
func (w *Association) QueryAll(dst []core.Region, keys [][]byte) []core.Region {
	dst = resizeSlice(dst, len(keys))
	ds := digestAll(&w.dscratch, keys)
	for i, d := range ds {
		dst[i] = w.QueryDigest(d)
	}
	return dst
}

// Rotate retires the oldest generation's memberships and installs a
// fresh head generation.
func (w *Association) Rotate() error { return w.rot.Rotate() }

// RotateIfDue rotates once when the spec's Tick has elapsed since the
// last due rotation, reporting whether it did. See Rotator.RotateIfDue.
func (w *Association) RotateIfDue(now time.Time) (bool, error) { return w.rot.RotateIfDue(now) }

// Window returns the rotation snapshot: ring length, epoch, tick, and
// per-generation occupancy newest to oldest (N is n1 + n2).
func (w *Association) Window() Info {
	return w.rot.info(func(f *core.CountingAssociation) GenInfo {
		return GenInfo{N: f.N1() + f.N2(), FillRatio: f.FillRatio()}
	})
}

// M returns the per-generation base array size in bits.
func (w *Association) M() int { return w.rot.Head().M() }

// K returns the bit positions per element.
func (w *Association) K() int { return w.rot.Head().K() }

// MaxOffset returns the per-generation w̄.
func (w *Association) MaxOffset() int { return w.rot.Head().MaxOffset() }

// Generations returns the ring length G.
func (w *Association) Generations() int { return w.rot.Generations() }

// Epoch returns the number of completed rotations.
func (w *Association) Epoch() uint64 { return w.rot.Epoch() }

// N1 returns the total S1 cardinality across generations (a key
// spanning rotations counts once per generation holding it).
func (w *Association) N1() int {
	n := 0
	for _, g := range w.rot.gens {
		n += g.N1()
	}
	return n
}

// N2 returns the total S2 cardinality across generations.
func (w *Association) N2() int {
	n := 0
	for _, g := range w.rot.gens {
		n += g.N2()
	}
	return n
}

// SizeBytes returns the combined footprint of all generations.
func (w *Association) SizeBytes() int {
	b := 0
	for _, g := range w.rot.gens {
		b += g.SizeBytes()
	}
	return b
}

// FillRatio returns the mean query-array fill ratio across
// generations.
func (w *Association) FillRatio() float64 {
	s := 0.0
	for _, g := range w.rot.gens {
		s += g.FillRatio()
	}
	return s / float64(len(w.rot.gens))
}

// Kind returns core.KindWindowAssociation.
func (w *Association) Kind() core.Kind { return core.KindWindowAssociation }

// Spec returns the construction geometry; New(w.Spec()) builds an
// empty ring identical to w before any insert.
func (w *Association) Spec() core.Spec {
	return windowSpec(w.rot.Head().Spec(), core.KindWindowAssociation,
		w.rot.Generations(), w.rot.Tick())
}

// Stats returns the aggregate occupancy snapshot (N sums both sets
// across generations, FillRatio is the generations' mean).
func (w *Association) Stats() core.Stats {
	return core.Stats{
		Kind:      core.KindWindowAssociation,
		N:         w.N1() + w.N2(),
		SizeBytes: w.SizeBytes(),
		FillRatio: w.FillRatio(),
	}
}
