// Package bitvec implements the bit array B underlying every filter in
// the reproduction, with the two capabilities the ShBF framework needs
// beyond a plain bitset:
//
//  1. Windowed reads. ShBF queries read w̄ (or c) consecutive bits
//     starting at an arbitrary position and inspect where the 1s fall
//     (Figure 1). Window returns up to 64 consecutive bits as a uint64.
//
//  2. Memory-access accounting. The paper's Figures 8, 10(b) and 11(b)
//     report "# memory accesses per query"; the vector charges an
//     attached memmodel.Counter per the byte-addressable model of
//     Section 3.1 (one access per ≤64-bit window, one per isolated bit).
//
// Vectors are created with explicit slack so shifted positions
// h_i(e)%m + o(e) never wrap: the paper "extends the number of bits in
// ShBF to m+c" (Section 1.2).
package bitvec

import (
	"fmt"
	"math/bits"

	"shbf/internal/memmodel"
)

// Vector is a fixed-size bit array. The zero value is unusable; use New.
type Vector struct {
	words []uint64
	n     int // total bits, including slack
	acc   *memmodel.Counter
}

// New returns a vector of n bits, all zero. It panics if n is not
// positive: sizes are static configuration derived from m and the
// offset range, not runtime input.
func New(n int) *Vector {
	if n <= 0 {
		panic(fmt.Sprintf("bitvec: size %d must be positive", n))
	}
	// One guard word beyond the last data word lets Window read two
	// words unconditionally (branchless) at every in-range position.
	return &Vector{
		words: make([]uint64, (n+63)/64+1),
		n:     n,
	}
}

// SetCounter attaches an access counter; nil detaches. Read and write
// paths charge it per the Section 3.1 model.
func (v *Vector) SetCounter(c *memmodel.Counter) { v.acc = c }

// Counter returns the attached access counter (possibly nil).
func (v *Vector) Counter() *memmodel.Counter { return v.acc }

// Len returns the total number of bits, including slack.
func (v *Vector) Len() int { return v.n }

// SizeBytes returns the memory footprint of the logical bit storage
// (excluding the internal guard word).
func (v *Vector) SizeBytes() int { return (v.n + 63) / 64 * 8 }

// Set sets bit i to 1, charging one write access.
func (v *Vector) Set(i int) {
	v.boundsCheck(i)
	v.words[i>>6] |= 1 << uint(i&63)
	v.acc.AddWrites(1)
}

// Clear sets bit i to 0, charging one write access.
func (v *Vector) Clear(i int) {
	v.boundsCheck(i)
	v.words[i>>6] &^= 1 << uint(i&63)
	v.acc.AddWrites(1)
}

// Bit reports whether bit i is set, charging one read access. This is
// the probe primitive of the standard BF baseline, whose k probes hit k
// random words and therefore cost k accesses (Section 1.2.1).
func (v *Vector) Bit(i int) bool {
	v.boundsCheck(i)
	v.acc.AddReads(1)
	return v.words[i>>6]&(1<<uint(i&63)) != 0
}

// Peek reports whether bit i is set without charging an access. Used by
// tests and by write paths that already accounted for their access.
func (v *Vector) Peek(i int) bool {
	v.boundsCheck(i)
	return v.words[i>>6]&(1<<uint(i&63)) != 0
}

// Window returns the width consecutive bits starting at pos, packed into
// the low bits of a uint64 (bit pos at bit 0). width must be in [1, 64]
// and the window must lie inside the vector. It charges
// memmodel.AccessCount(pos, width) read accesses — exactly 1 for the
// paper's w̄ ≤ w−7 windows.
func (v *Vector) Window(pos, width int) uint64 {
	if width <= 0 || width > 64 {
		panic(fmt.Sprintf("bitvec: window width %d out of range [1,64]", width))
	}
	if pos < 0 || pos+width > v.n {
		panic(fmt.Sprintf("bitvec: window [%d,%d) out of range [0,%d)", pos, pos+width, v.n))
	}
	if v.acc != nil {
		v.acc.AddReads(memmodel.AccessCount(pos, width))
	}

	// Branchless two-word read: the guard word makes words[wi+1] always
	// addressable, and Go defines x << 64 as 0, so the second term
	// vanishes when the window is word-aligned (off = 0).
	wi, off := pos>>6, uint(pos&63)
	out := v.words[wi]>>off | v.words[wi+1]<<(64-off)
	if width < 64 {
		out &= (1 << uint(width)) - 1
	}
	return out
}

// WindowUncounted is the hot-path form of Window: the same two-word
// read, but small enough to inline — no access accounting and no
// explicit range validation. mask is the precomputed width mask
// (1<<width − 1; ^0 for width 64). Callers must (a) hold positions
// that are in range by construction — every filter derives them as
// Reduce(·, m) + offset ≤ Len — and (b) use Window instead whenever an
// access counter may be attached, or the paper's access figures go
// silently uncounted. Memory safety is independent of (a): a wild
// position faults the slice bounds check rather than reading foreign
// memory.
func (v *Vector) WindowUncounted(pos int, mask uint64) uint64 {
	wi, off := pos>>6, uint(pos&63)
	return (v.words[wi]>>off | v.words[wi+1]<<(64-off)) & mask
}

// Words returns the vector's backing words — data words in
// least-significant-bit-first order followed by the trailing guard
// word. The slice aliases live storage; callers (the frozen encoder)
// must treat it as read-only.
func (v *Vector) Words() []uint64 { return v.words }

// OnesCount returns the number of set bits (no access charged; this is
// instrumentation, not a query path).
func (v *Vector) OnesCount() int {
	total := 0
	for _, w := range v.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// FillRatio returns the fraction of set bits, the empirical 1−p′ of the
// analysis (Equation 2).
func (v *Vector) FillRatio() float64 {
	return float64(v.OnesCount()) / float64(v.n)
}

// Reset zeroes every bit without charging accesses.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Clone returns a deep copy sharing no storage; the clone has no counter.
func (v *Vector) Clone() *Vector {
	w := make([]uint64, len(v.words))
	copy(w, v.words)
	return &Vector{words: w, n: v.n}
}

// Or ORs o's bits into v. Panics if lengths differ (a programming
// error: set algebra requires identical geometry).
func (v *Vector) Or(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: Or of mismatched lengths %d and %d", v.n, o.n))
	}
	for i := range v.words {
		v.words[i] |= o.words[i]
	}
}

// And ANDs o's bits into v. Panics if lengths differ.
func (v *Vector) And(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: And of mismatched lengths %d and %d", v.n, o.n))
	}
	for i := range v.words {
		v.words[i] &= o.words[i]
	}
}

// Equal reports whether two vectors have identical length and contents.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

func (v *Vector) boundsCheck(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: bit %d out of range [0,%d)", i, v.n))
	}
}
