// Package server implements the query-serving layer behind the shbfd
// daemon. The serving unit is a namespace: one logical Shifting Bloom
// Filter trio — membership (ShBF_M), association (CShBF_A),
// multiplicity (CShBF_X) — backed by the lock-striped shards of
// internal/sharded, so many concurrent clients (the paper's receive
// queues) query in parallel. One daemon serves many namespaces
// (multi-tenant), each with its own geometry and window policy, over
// two transports:
//
//   - the v2 HTTP/JSON API, namespace-scoped under /v2/namespaces, plus
//     the v1 endpoints kept as deprecated shims over the "default"
//     namespace;
//   - ShBP, a length-prefixed binary batch protocol (internal/wire) on
//     a dedicated listener, whose decode feeds the library's batch
//     paths directly — the transport for small-batch-heavy serving
//     where JSON decode dominates.
//
// HTTP endpoints (all bodies JSON; {ns} is a namespace name; keys are
// strings, optionally base64-encoded for binary element IDs such as
// the paper's 13-byte 5-tuples):
//
//	POST   /v2/namespaces                             {"name": ..., overrides...} → create a tenant
//	GET    /v2/namespaces                             → tenant summaries
//	DELETE /v2/namespaces/{ns}                        → delete a tenant
//	POST   /v2/namespaces/{ns}/membership/add         {"keys": [...]}
//	POST   /v2/namespaces/{ns}/membership/contains    {"keys": [...]}            → per-key booleans
//	POST   /v2/namespaces/{ns}/association/add        {"set": 1|2, "keys": [...]}
//	POST   /v2/namespaces/{ns}/association/remove     {"set": 1|2, "keys": [...]}
//	POST   /v2/namespaces/{ns}/association/classify   {"keys": [...]}            → candidate regions
//	POST   /v2/namespaces/{ns}/multiplicity/add       {"items": [{"key": k, "count": c}, ...]}
//	POST   /v2/namespaces/{ns}/multiplicity/remove    {"items": [...]}
//	POST   /v2/namespaces/{ns}/multiplicity/count     {"keys": [...]}            → per-key counts
//	POST   /v2/namespaces/{ns}/rotate                                            → retire the tenant's oldest generation
//	GET    /v2/namespaces/{ns}/stats                                             → occupancy, FPR, window, counters
//	GET    /v2/namespaces/{ns}/membership/envelope                               → membership filter as a raw ShBE envelope
//	POST   /v2/namespaces/{ns}/merge                  raw ShBE envelope body     → union into the live membership filter
//	POST   /v2/namespaces/{ns}/freeze                                            → membership filter as a raw ShBZ frozen container; tenant becomes read-only (writes 409)
//	POST   /v2/snapshot                               {"rotation_consistent": bool} → persist all tenants
//	GET    /v2/stats                                                             → daemon-wide tenant summaries
//	GET    /v2/cluster                                                           → the cluster map (cluster mode; see internal/cluster)
//	GET    /healthz
//	GET    /metrics                                                              → Prometheus text metrics (same bytes as ShBP OpMetrics; see metrics.go)
//
// The v1 endpoints (POST /v1/membership/add, ... — see OPERATIONS.md)
// remain byte-compatible shims over the default namespace.
//
// With a namespace's WindowGenerations set its filters run as sliding
// windows (sharded generation rings, internal/window): writes go to
// each filter's head generation and a rotation — per-tenant POST
// .../rotate, or shbfd's -tick loop — retires the oldest, so answers
// cover the last G−1..G ticks and memory and error rates stay bounded
// on endless streams.
//
// Persistence is snapshot-based: SaveSnapshot serializes every
// namespace into one file (written atomically; optionally serialized
// against rotations for a single-epoch cut), and New reloads it at
// startup. Pre-namespace snapshots restore into the default namespace.
// See DESIGN.md §5 and OPERATIONS.md.
package server

import (
	"errors"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"shbf"
	"shbf/internal/core"
	"shbf/internal/ingest"
	"shbf/internal/sharded"
)

// Config sizes the default namespace's filters (and is the base every
// created namespace inherits from). The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// MembershipBits is the total ShBF_M bit budget across shards.
	MembershipBits int
	// MembershipK is k for the membership filter (must be even).
	MembershipK int
	// AssociationBits is the total CShBF_A bit budget across shards.
	AssociationBits int
	// AssociationK is k for the association filter.
	AssociationK int
	// MultiplicityBits is the total CShBF_X bit budget across shards.
	MultiplicityBits int
	// MultiplicityK is k for the multiplicity filter.
	MultiplicityK int
	// MaxCount is the maximum multiplicity c (the paper uses 57).
	MaxCount int
	// Shards is the shard count per filter (rounded up to a power of
	// two).
	Shards int
	// Seed makes the filters deterministic across processes.
	Seed uint64
	// SnapshotPath, when non-empty, is the file the snapshot endpoints
	// write and New loads at startup if it exists.
	SnapshotPath string
	// WindowGenerations, when ≥ 2, runs the default namespace's
	// filters as a sliding window of that many generations: writes go
	// to the head generation and a rotation retires the oldest, so the
	// daemon answers "seen in the last WindowGenerations−1..
	// WindowGenerations ticks" and its memory and false-positive rate
	// stay bounded no matter how long the stream runs. Zero keeps the
	// classic unbounded filters.
	WindowGenerations int
	// WindowTick is the rotation period recorded in the window specs
	// and driven by shbfd's -tick loop (zero = rotate only on
	// the rotate endpoints). Requires WindowGenerations ≥ 2.
	WindowTick time.Duration
	// MaxTotalBits is the daemon-wide memory ceiling: the sum of every
	// namespace's filter bits (all generations of the trio) may not
	// exceed it. Namespace creations past the ceiling are shed with
	// 429/StatusOverloaded. Zero = unlimited.
	MaxTotalBits int64
	// MaxInflightFrames caps the ShBP frames being dispatched at once
	// across all binary connections; excess frames are shed with
	// StatusOverloaded, writes (at ¾ of the cap) before reads (at the
	// cap). Zero = unlimited.
	MaxInflightFrames int
	// ShBPIdleTimeout reaps ShBP connections that send no complete
	// frame for this long, so a client that dials and goes silent
	// cannot hold a goroutine and buffers forever. Zero = never reap.
	ShBPIdleTimeout time.Duration
	// NoMetrics disables the metrics registry and all request
	// instrumentation (no GET /metrics, OpMetrics answers not-found).
	// It exists as the A/B baseline for the instrumentation-overhead
	// benchmark (cmd/shbench -serve); production daemons leave it off.
	NoMetrics bool
}

// DefaultConfig returns a config sized for ~1M members at k = 8
// (m = nk/ln 2 ≈ 11.5M bits ≈ 1.4 MiB per filter kind).
func DefaultConfig() Config {
	return Config{
		MembershipBits:   12 << 20,
		MembershipK:      8,
		AssociationBits:  12 << 20,
		AssociationK:     8,
		MultiplicityBits: 18 << 20,
		MultiplicityK:    8,
		MaxCount:         57,
		Shards:           16,
		Seed:             1,
	}
}

// counters tallies one namespace's served queries per endpoint group.
type counters struct {
	membershipAdd      atomic.Uint64
	membershipContains atomic.Uint64
	associationUpdate  atomic.Uint64
	associationQuery   atomic.Uint64
	multiplicityUpdate atomic.Uint64
	multiplicityQuery  atomic.Uint64
	rotations          atomic.Uint64
	// rateShed counts requests (not keys) shed by the tenant's rate
	// quota, on either transport (admission.go); exported as
	// shbf_namespace_shed_total{reason="rate"}.
	rateShed atomic.Uint64
}

// membershipFilter is the serving surface a namespace needs from its
// membership slot; both the classic sharded.Filter and the windowed
// sharded.Window satisfy it (the latter also satisfies shbf.Windowed).
type membershipFilter interface {
	shbf.Filter
	Add(e []byte)
	Contains(e []byte) bool
	AddAll(keys [][]byte) error
	ContainsAll(dst []bool, keys [][]byte) []bool
	ShardStats() []sharded.ShardStat
}

// associationFilter is the association slot's surface
// (sharded.Association or sharded.WindowAssociation).
type associationFilter interface {
	shbf.Filter
	InsertS1(e []byte) error
	InsertS2(e []byte) error
	DeleteS1(e []byte) error
	DeleteS2(e []byte) error
	QueryAll(dst []core.Region, keys [][]byte) []core.Region
	ShardStats() []sharded.AssociationShardStat
}

// multiplicityFilter is the multiplicity slot's surface
// (sharded.Multiplicity or sharded.WindowMultiplicity).
type multiplicityFilter interface {
	shbf.Filter
	Insert(e []byte) error
	Delete(e []byte) error
	Count(e []byte) int
	CountAll(dst []int, keys [][]byte) []int
	ShardStats() []sharded.MultiplicityShardStat
}

// Server owns the namespace registry and serves it over HTTP (Handler)
// and ShBP (ServeShBP). All methods are safe for concurrent use.
type Server struct {
	cfg Config

	// mu guards the namespaces map and usedBits; the namespaces
	// themselves are internally synchronized.
	mu         sync.RWMutex
	namespaces map[string]*namespace

	// usedBits is the filter-bit footprint of every registered
	// namespace, metered against cfg.MaxTotalBits (admission.go).
	usedBits int64

	// frames is the ShBP in-flight frame gate (nil = unlimited).
	frames *frameGate

	// rotMu serializes rotations against rotation-consistent
	// snapshots, so such a snapshot captures every shard of every ring
	// at one epoch.
	rotMu sync.Mutex

	// snapshots counts persisted snapshots (daemon-wide);
	// lastSnapshotUnix is the newest snapshot's completion time in
	// unix seconds (0 = never), exported as a metrics gauge.
	snapshots        atomic.Uint64
	lastSnapshotUnix atomic.Int64

	// cluster is the cluster-mode identity (nil outside cluster mode);
	// handlers read it lock-free on every request, so it is stored
	// whole and never mutated (see SetClusterMap).
	cluster atomic.Pointer[clusterState]

	start time.Time

	// udp is the ShBU ingest receiver (udp.go). Always present — even
	// without a -udp-addr listener the receiver exists, so the
	// shbf_udp_* metric surface is stable and tests can drive
	// datagrams through it directly.
	udp *ingest.Receiver

	// met is the observability surface (metrics.go); nil with
	// cfg.NoMetrics, and every recording site nil-checks it.
	met *serverMetrics
}

// Specs returns the three filter specs the config describes, the form
// a namespace's filters are actually constructed from (via shbf.New).
// With WindowGenerations set they are the sliding-window kinds; the
// window geometry (ring length, tick) travels in the specs and
// therefore in every snapshot envelope.
func (cfg Config) Specs() (mem, assoc, mult shbf.Spec) {
	mem = shbf.Spec{Kind: shbf.KindShardedMembership, M: cfg.MembershipBits,
		K: cfg.MembershipK, Shards: cfg.Shards, Seed: cfg.Seed}
	assoc = shbf.Spec{Kind: shbf.KindShardedAssociation, M: cfg.AssociationBits,
		K: cfg.AssociationK, Shards: cfg.Shards, Seed: cfg.Seed}
	mult = shbf.Spec{Kind: shbf.KindShardedMultiplicity, M: cfg.MultiplicityBits,
		K: cfg.MultiplicityK, C: cfg.MaxCount, Shards: cfg.Shards, Seed: cfg.Seed}
	if cfg.WindowGenerations > 0 {
		for _, s := range []*shbf.Spec{&mem, &assoc, &mult} {
			kind, err := core.WindowKind(s.Kind)
			if err != nil {
				panic(err) // unreachable: the three sharded kinds all window
			}
			s.Kind = kind
			s.Generations = cfg.WindowGenerations
			s.Tick = cfg.WindowTick
		}
	}
	return mem, assoc, mult
}

// New builds the default namespace from cfg and, when cfg.SnapshotPath
// names an existing file, restores the namespace set from it.
func New(cfg Config) (*Server, error) {
	def, err := newNamespace(DefaultNamespace, cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		namespaces: map[string]*namespace{DefaultNamespace: def},
		usedBits:   def.totalBits(),
		frames:     newFrameGate(cfg.MaxInflightFrames),
		start:      time.Now(),
	}
	s.udp = ingest.NewReceiver(udpHandler{s})
	if !cfg.NoMetrics {
		s.met = newServerMetrics(s)
	}
	if cfg.MaxTotalBits > 0 && s.usedBits > cfg.MaxTotalBits {
		return nil, fmt.Errorf("server: default namespace needs %d filter bits, above the %d-bit memory ceiling",
			s.usedBits, cfg.MaxTotalBits)
	}
	if cfg.SnapshotPath != "" {
		switch _, err := os.Stat(cfg.SnapshotPath); {
		case err == nil:
			if err := s.LoadSnapshot(cfg.SnapshotPath); err != nil {
				return nil, fmt.Errorf("server: restoring snapshot: %w", err)
			}
			// The snapshot wins over the flags (its envelopes carry
			// their own geometry and window state), so a window-mode
			// mismatch is legal — but it means the operator's flags are
			// not describing what will be served, so say so loudly.
			if wantWin, haveWin := cfg.WindowGenerations >= 2, s.Windowed(); wantWin != haveWin {
				log.Printf("server: snapshot %s overrides window mode: flags say windowed=%v, restored filters are windowed=%v (start from an empty snapshot path to apply the flags)",
					cfg.SnapshotPath, wantWin, haveWin)
			}
		case errors.Is(err, fs.ErrNotExist):
			// First start: nothing to restore.
		default:
			// Anything else (permissions, transient I/O) must not be
			// mistaken for a first start — serving empty and then
			// snapshotting over the existing file would lose state.
			return nil, fmt.Errorf("server: checking snapshot: %w", err)
		}
	}
	return s, nil
}

// Handler returns the daemon's HTTP routing table: the namespace-
// scoped v2 API and the v1 shims over the default namespace.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	// v1: deprecated shims over the default namespace, byte-compatible
	// with the pre-namespace daemon. The op argument is the route's
	// metrics label, shared with the equivalent v2 route (and, where
	// one exists, named after the equivalent wire op).
	def := func(op string, h func(*namespace, http.ResponseWriter, *http.Request)) http.HandlerFunc {
		return s.instrumentHTTP(op, func(w http.ResponseWriter, r *http.Request) { h(s.defaultNS(), w, r) })
	}
	mux.HandleFunc("POST /v1/membership/add", def("membership-add", s.nsMembershipAdd))
	mux.HandleFunc("POST /v1/membership/contains", def("membership-contains", s.nsMembershipContains))
	mux.HandleFunc("POST /v1/association/add", def("association-add", s.nsAssociationAdd))
	mux.HandleFunc("POST /v1/association/remove", def("association-remove", s.nsAssociationRemove))
	mux.HandleFunc("POST /v1/association/classify", def("association-query", s.nsAssociationClassify))
	mux.HandleFunc("POST /v1/multiplicity/add", def("multiplicity-add", s.nsMultiplicityAdd))
	mux.HandleFunc("POST /v1/multiplicity/remove", def("multiplicity-remove", s.nsMultiplicityRemove))
	mux.HandleFunc("POST /v1/multiplicity/count", def("multiplicity-count", s.nsMultiplicityCount))
	mux.HandleFunc("POST /v1/snapshot", s.instrumentHTTP("snapshot", s.handleSnapshot))
	mux.HandleFunc("POST /v1/rotate", def("rotate", s.nsRotate))
	mux.HandleFunc("GET /v1/stats", def("stats", s.nsStats))

	// v2: namespace-scoped.
	scoped := func(op string, h func(*namespace, http.ResponseWriter, *http.Request)) http.HandlerFunc {
		return s.instrumentHTTP(op, func(w http.ResponseWriter, r *http.Request) {
			ns, err := s.lookup(r.PathValue("ns"))
			if err != nil {
				writeError(w, http.StatusNotFound, err)
				return
			}
			h(ns, w, r)
		})
	}
	mux.HandleFunc("POST /v2/namespaces", s.instrumentHTTP("namespace-create", s.handleNamespaceCreate))
	mux.HandleFunc("GET /v2/namespaces", s.instrumentHTTP("namespace-list", s.handleNamespaceList))
	mux.HandleFunc("DELETE /v2/namespaces/{ns}", s.instrumentHTTP("namespace-delete", s.handleNamespaceDelete))
	mux.HandleFunc("POST /v2/namespaces/{ns}/membership/add", scoped("membership-add", s.nsMembershipAdd))
	mux.HandleFunc("POST /v2/namespaces/{ns}/membership/contains", scoped("membership-contains", s.nsMembershipContains))
	mux.HandleFunc("POST /v2/namespaces/{ns}/association/add", scoped("association-add", s.nsAssociationAdd))
	mux.HandleFunc("POST /v2/namespaces/{ns}/association/remove", scoped("association-remove", s.nsAssociationRemove))
	mux.HandleFunc("POST /v2/namespaces/{ns}/association/classify", scoped("association-query", s.nsAssociationClassify))
	mux.HandleFunc("POST /v2/namespaces/{ns}/multiplicity/add", scoped("multiplicity-add", s.nsMultiplicityAdd))
	mux.HandleFunc("POST /v2/namespaces/{ns}/multiplicity/remove", scoped("multiplicity-remove", s.nsMultiplicityRemove))
	mux.HandleFunc("POST /v2/namespaces/{ns}/multiplicity/count", scoped("multiplicity-count", s.nsMultiplicityCount))
	mux.HandleFunc("POST /v2/namespaces/{ns}/rotate", scoped("rotate", s.nsRotate))
	mux.HandleFunc("GET /v2/namespaces/{ns}/stats", scoped("stats", s.nsStats))
	mux.HandleFunc("GET /v2/namespaces/{ns}/membership/envelope", scoped("membership-dump", s.nsMembershipEnvelope))
	mux.HandleFunc("POST /v2/namespaces/{ns}/merge", scoped("membership-merge", s.nsMembershipMerge))
	mux.HandleFunc("GET /v2/namespaces/{ns}/multiplicity/envelope", scoped("multiplicity-dump", s.nsMultiplicityEnvelope))
	mux.HandleFunc("POST /v2/namespaces/{ns}/multiplicity/merge", scoped("multiplicity-merge", s.nsMultiplicityMerge))
	mux.HandleFunc("POST /v2/namespaces/{ns}/freeze", scoped("freeze", s.nsFreeze))
	mux.HandleFunc("POST /v2/snapshot", s.instrumentHTTP("snapshot", s.handleSnapshot))
	mux.HandleFunc("GET /v2/stats", s.instrumentHTTP("daemon-stats", s.handleDaemonStats))
	mux.HandleFunc("GET /v2/cluster", s.instrumentHTTP("cluster-map", s.handleClusterMap))

	mux.HandleFunc("GET /healthz", s.instrumentHTTP("healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	}))
	// The scrape route itself is deliberately uninstrumented: scraping
	// over HTTP and over ShBP OpMetrics must render identical bytes.
	if s.met != nil {
		mux.Handle("GET /metrics", s.met)
	}
	return mux
}
