// Package baseline implements every comparator scheme of the paper's
// evaluation, plus the related-work schemes used in ablations:
//
//   - BF — the standard Bloom filter [Bloom 1970], the membership
//     baseline of Figures 4, 8 and 9.
//   - CBF — the counting Bloom filter [Fan et al. 2000].
//   - OneMemBF — "1MemBF", the one-memory-access Bloom filter of Qiao
//     et al. [17], "the state-of-the-art in membership query BFs"
//     (Figures 7 and 9).
//   - KMBF — the Kirsch–Mitzenmacher double-hashing Bloom filter [13]
//     ("less hashing, same performance"), a related-work ablation.
//   - IBF — "iBF", one individual Bloom filter per set, the association
//     baseline of Figure 10 and Table 2.
//   - SpectralBF — the Spectral Bloom Filter of Cohen & Matias [8]
//     (basic and minimum-increase variants), the multiplicity baseline
//     of Figure 11.
//   - CMSketch — the count-min sketch of Cormode & Muthukrishnan [9],
//     the second multiplicity baseline of Figure 11.
//   - CuckooFilter — the cuckoo filter of Fan et al. [10], discussed in
//     related work (Section 2.1); included for extension benchmarks.
//   - DCF — Dynamic Count Filters of Aguilar-Saborit et al. [2],
//     discussed in related work (Section 2.3).
//
// All schemes share the element convention ([]byte) and, where
// meaningful, the memory-access accounting of package memmodel so they
// are compared under exactly the model the paper uses.
package baseline

import (
	"fmt"

	"shbf/internal/bitvec"
	"shbf/internal/hashing"
	"shbf/internal/memmodel"
)

// BF is the standard Bloom filter: k independent hash functions, one bit
// per function per element. Each query probe touches an independent
// random bit, so a probe is one memory access — the 2× gap to ShBF_M.
type BF struct {
	bits *bitvec.Vector
	m    int
	k    int
	fam  *hashing.Family
	n    int
}

// NewBF returns an empty m-bit Bloom filter with k hash functions.
func NewBF(m, k int, opts ...Option) (*BF, error) {
	cfg := applyOptions(opts)
	if m <= 0 {
		return nil, fmt.Errorf("baseline: m = %d must be positive", m)
	}
	if k < 1 {
		return nil, fmt.Errorf("baseline: k = %d must be ≥ 1", k)
	}
	f := &BF{
		bits: bitvec.New(m),
		m:    m,
		k:    k,
		fam:  hashing.NewFamily(k, cfg.seed),
	}
	f.bits.SetCounter(cfg.counter)
	return f, nil
}

// M, K and N report the parameters and the insert count.
func (f *BF) M() int { return f.m }
func (f *BF) K() int { return f.k }
func (f *BF) N() int { return f.n }

// SizeBytes returns the bit-array footprint.
func (f *BF) SizeBytes() int { return f.bits.SizeBytes() }

// FillRatio returns the fraction of set bits.
func (f *BF) FillRatio() float64 { return f.bits.FillRatio() }

// HashOpsPerQuery returns k, the worst-case hashing budget.
func (f *BF) HashOpsPerQuery() int { return f.k }

// Add inserts e, setting k bits (one digest pass, k mixes).
func (f *BF) Add(e []byte) {
	d := f.fam.Digest(e)
	for i := 0; i < f.k; i++ {
		f.bits.Set(f.fam.ModFromDigest(i, d, f.m))
	}
	f.n++
}

// Contains reports whether e may be in the set, probing bit by bit with
// early termination. The key is digested once; per probe only an
// integer mix and one memory access remain, so the paper's hashing
// budgets (k here vs ShBF_M's k/2+1) compare as mix counts over the
// same single pass.
func (f *BF) Contains(e []byte) bool {
	d := f.fam.Digest(e)
	for i := 0; i < f.k; i++ {
		if !f.bits.Bit(f.fam.ModFromDigest(i, d, f.m)) {
			return false
		}
	}
	return true
}

// Reset clears the filter.
func (f *BF) Reset() {
	f.bits.Reset()
	f.n = 0
}

// config and Option mirror the core package's functional options for the
// subset that applies to baselines.
type config struct {
	seed         uint64
	counter      *memmodel.Counter
	counterWidth uint
}

func applyOptions(opts []Option) config {
	cfg := config{seed: 0xba5e_0000, counterWidth: 4}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Option customizes baseline construction.
type Option func(*config)

// WithSeed sets the hash-family seed.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithAccessCounter attaches a memory-access counter to the scheme's
// storage.
func WithAccessCounter(mc *memmodel.Counter) Option {
	return func(c *config) { c.counter = mc }
}

// WithCounterWidth sets counter bit width for counting schemes
// (default 4; the paper's Figure 11 uses 6 for Spectral BF / CM sketch).
func WithCounterWidth(bits uint) Option {
	return func(c *config) { c.counterWidth = bits }
}
