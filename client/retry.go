package client

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"shbf/internal/wire"
)

// RetryPolicy configures [Client.WithRetry]: capped exponential
// backoff with full jitter. Retries are attempted only when they are
// safe — the operation must be idempotent, and the failure must be
// either a transport error (connection refused/reset, deadline on the
// wire) or daemon overload ([IsOverloaded]), both of which mean
// retrying cannot double-apply an update:
//
//   - Membership adds OR bits and merges union filters (membership by
//     OR, multiplicity by saturating add — re-applying an envelope
//     never changes a reported count), so repeating a possibly-applied
//     batch or merge lands on the same answers. Queries, dumps,
//     freezes (byte-identical by contract), stats, lists, pings and
//     cluster-map fetches are reads.
//   - Multiplicity and association updates increment counters; a lost
//     response may have applied them, so a blind retry double-counts.
//     These are never retried — resume explicitly from *Error.Applied.
//   - Rotation and namespace create/delete change state the caller
//     observes (epochs, existence), so a repeat can report a spurious
//     conflict; they are never retried either.
//
// Context cancellation and deadline expiry are never retried: the
// caller's budget is spent.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first try
	// (0 = no retries, making WithRetry a no-op).
	MaxRetries int
	// BaseDelay seeds the backoff: attempt n waits a uniformly random
	// duration in (0, min(BaseDelay·2ⁿ, MaxDelay)]. 0 = 20ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 = 1s.
	MaxDelay time.Duration
}

const (
	defaultBaseDelay = 20 * time.Millisecond
	defaultMaxDelay  = time.Second
)

// retryableOp reports whether op is safe to repeat after a failure
// whose application state is unknown (see the RetryPolicy comment for
// the per-op reasoning).
func retryableOp(op byte) bool {
	switch op {
	case wire.OpPing, wire.OpStats, wire.OpNamespaceList, wire.OpClusterMap,
		wire.OpMetrics,
		wire.OpMembershipAdd, wire.OpMembershipContains, wire.OpMembershipMerge,
		wire.OpMembershipDump, wire.OpFreeze,
		wire.OpAssociationQuery, wire.OpMultiplicityCount,
		wire.OpMultiplicityMerge, wire.OpMultiplicityDump:
		return true
	}
	return false
}

// retryableErr reports whether err is worth retrying at all: transport
// failures and daemon overload qualify; context expiry and every other
// daemon-reported status (bad request, not found, conflict — all
// deterministic) do not.
func retryableErr(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var e *Error
	if errors.As(err, &e) {
		return e.Status == wire.StatusOverloaded
	}
	return true // transport-level failure
}

// shouldRetry decides one more attempt. Nil-receiver safe: a client
// without a policy never retries.
func (p *RetryPolicy) shouldRetry(op byte, err error, attempt int) bool {
	return p != nil && attempt < p.MaxRetries && retryableOp(op) && retryableErr(err)
}

// wait sleeps the jittered backoff for the given attempt, returning
// early with ctx.Err() if the context expires first.
func (p *RetryPolicy) wait(ctx context.Context, attempt int) error {
	base, cap := p.BaseDelay, p.MaxDelay
	if base <= 0 {
		base = defaultBaseDelay
	}
	if cap <= 0 {
		cap = defaultMaxDelay
	}
	d := base << uint(attempt)
	if d <= 0 || d > cap { // <<-overflow guards included
		d = cap
	}
	// Full jitter: a uniformly random wait in (0, d] decorrelates the
	// retry storms of many clients shed at the same instant.
	d = 1 + time.Duration(rand.Int63n(int64(d)))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
