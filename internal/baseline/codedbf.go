package baseline

import (
	"fmt"
	"math/bits"
)

// CodedBF is the Coded Bloom Filter of Lu, Prabhakar & Bonomi [16 in
// the paper] for multi-set membership (Section 2.2): each of g
// pairwise-disjoint sets gets a non-zero binary code of L = ⌈log2(g+1)⌉
// bits, and one Bloom filter is kept per code bit position. An element
// of set s is inserted into the filters whose bit of code(s) = s+1 is
// one; a query reads all L filters and reassembles a code.
//
// The paper's criticism applies verbatim: "if any pair of sets in the
// group is not disjoint, these schemes do not function correctly" — an
// element in two sets ORs its two codes, yielding a third set's code or
// an invalid one. CodedBF exists here as the baseline the
// MultiAssociation extension is measured against.
type CodedBF struct {
	filters []*BF
	g       int
	codeLen int
}

// BuildCodedBF constructs the filter group over g = len(sets) disjoint
// sets. totalBits is split evenly across the ⌈log2(g+1)⌉ per-bit
// filters. Elements present in more than one set are accepted silently
// — producing exactly the misclassification the scheme is known for —
// so experiments can demonstrate the failure mode.
func BuildCodedBF(sets [][][]byte, totalBits, k int, opts ...Option) (*CodedBF, error) {
	g := len(sets)
	if g < 1 {
		return nil, fmt.Errorf("baseline: need at least one set")
	}
	if totalBits <= 0 {
		return nil, fmt.Errorf("baseline: totalBits = %d must be positive", totalBits)
	}
	codeLen := bits.Len(uint(g)) // ⌈log2(g+1)⌉
	cfg := applyOptions(opts)
	c := &CodedBF{
		filters: make([]*BF, codeLen),
		g:       g,
		codeLen: codeLen,
	}
	perFilter := totalBits / codeLen
	for j := range c.filters {
		f, err := NewBF(perFilter, k, append(opts, WithSeed(cfg.seed+uint64(j)*31+7))...)
		if err != nil {
			return nil, fmt.Errorf("baseline: building code filter %d: %w", j, err)
		}
		c.filters[j] = f
	}
	for s, set := range sets {
		code := s + 1
		for _, e := range set {
			for j := 0; j < codeLen; j++ {
				if code&(1<<j) != 0 {
					c.filters[j].Add(e)
				}
			}
		}
	}
	return c, nil
}

// G returns the number of sets; CodeLen the number of per-bit filters.
func (c *CodedBF) G() int       { return c.g }
func (c *CodedBF) CodeLen() int { return c.codeLen }

// SizeBytes returns the combined footprint.
func (c *CodedBF) SizeBytes() int {
	total := 0
	for _, f := range c.filters {
		total += f.SizeBytes()
	}
	return total
}

// HashOpsPerQuery returns codeLen·k: every per-bit filter is probed.
func (c *CodedBF) HashOpsPerQuery() int { return c.codeLen * c.filters[0].k }

// Query returns the decoded set index in [0, g) and ok = true when the
// reassembled code is a valid single-set code. ok = false covers both
// "not in any set" (code 0) and invalid codes (> g) caused by false
// positives or overlapping inserts.
func (c *CodedBF) Query(e []byte) (set int, ok bool) {
	code := 0
	for j, f := range c.filters {
		if f.Contains(e) {
			code |= 1 << j
		}
	}
	if code < 1 || code > c.g {
		return 0, false
	}
	return code - 1, true
}
