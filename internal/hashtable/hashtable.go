// Package hashtable implements the chained hash table substrate the
// paper leans on in two places:
//
//   - ShBF_A construction builds tables T1 and T2 over S1 and S2 to
//     decide each element's region and hence its offset (Section 4.1).
//   - ShBF_X stores each element's count "in a hash table using the
//     simplest collision handling method called collision chain"
//     (Section 5.1) and consults it for no-false-negative updates
//     (Section 5.3.2, Figure 5).
//
// The table maps byte-string elements to uint64 values (counts, or 1 for
// set membership), uses separate chaining exactly as the paper states,
// and grows by doubling when the load factor exceeds 4 entries/bucket.
// In the paper's architecture this structure lives in off-chip DRAM; an
// optional memmodel.Counter charges one access per bucket-chain node
// touched so update-path costs can be reported.
package hashtable

import (
	"shbf/internal/hashing"
	"shbf/internal/memmodel"
)

const (
	initialBuckets = 16
	maxLoadFactor  = 4 // mean chain length before doubling
)

type entry struct {
	key   string
	value uint64
	next  *entry
}

// Table is a chained hash table from byte strings to uint64 values.
// Use New; the zero value is unusable.
type Table struct {
	buckets []*entry
	size    int
	hasher  hashing.Hasher
	acc     *memmodel.Counter
}

// New returns an empty table seeded for its internal hash function.
func New(seed uint64) *Table {
	return &Table{
		buckets: make([]*entry, initialBuckets),
		hasher:  hashing.New(seed),
	}
}

// SetCounter attaches a DRAM access counter; nil detaches.
func (t *Table) SetCounter(c *memmodel.Counter) { t.acc = c }

// Len returns the number of stored keys.
func (t *Table) Len() int { return t.size }

// Put stores value under key, replacing any existing value.
func (t *Table) Put(key []byte, value uint64) {
	if t.size >= len(t.buckets)*maxLoadFactor {
		t.grow()
	}
	i := t.bucketIndex(key)
	for e := t.buckets[i]; e != nil; e = e.next {
		t.acc.AddReads(1)
		if e.key == string(key) {
			e.value = value
			t.acc.AddWrites(1)
			return
		}
	}
	t.buckets[i] = &entry{key: string(key), value: value, next: t.buckets[i]}
	t.size++
	t.acc.AddWrites(1)
}

// Get returns the value stored under key and whether it was present.
func (t *Table) Get(key []byte) (uint64, bool) {
	i := t.bucketIndex(key)
	for e := t.buckets[i]; e != nil; e = e.next {
		t.acc.AddReads(1)
		if e.key == string(key) {
			return e.value, true
		}
	}
	return 0, false
}

// Contains reports whether key is present.
func (t *Table) Contains(key []byte) bool {
	_, ok := t.Get(key)
	return ok
}

// Add adds delta to the value under key (inserting it at delta if
// absent) and returns the new value. This is the count-maintenance
// primitive of ShBF_X updates.
func (t *Table) Add(key []byte, delta uint64) uint64 {
	v, _ := t.Get(key)
	v += delta
	t.Put(key, v)
	return v
}

// Sub subtracts delta from the value under key. If the value would reach
// zero (or underflow) the key is removed and 0 is returned. The boolean
// reports whether the key was present.
func (t *Table) Sub(key []byte, delta uint64) (uint64, bool) {
	v, ok := t.Get(key)
	if !ok {
		return 0, false
	}
	if v <= delta {
		t.Delete(key)
		return 0, true
	}
	v -= delta
	t.Put(key, v)
	return v, true
}

// Delete removes key, reporting whether it was present.
func (t *Table) Delete(key []byte) bool {
	i := t.bucketIndex(key)
	var prev *entry
	for e := t.buckets[i]; e != nil; prev, e = e, e.next {
		t.acc.AddReads(1)
		if e.key == string(key) {
			if prev == nil {
				t.buckets[i] = e.next
			} else {
				prev.next = e.next
			}
			t.size--
			t.acc.AddWrites(1)
			return true
		}
	}
	return false
}

// Range calls fn for every (key, value) pair until fn returns false.
// Iteration order is unspecified. The table must not be mutated during
// iteration.
func (t *Table) Range(fn func(key []byte, value uint64) bool) {
	for _, head := range t.buckets {
		for e := head; e != nil; e = e.next {
			if !fn([]byte(e.key), e.value) {
				return
			}
		}
	}
}

// MaxChainLength returns the longest collision chain (instrumentation
// for the "simplest collision handling" substrate).
func (t *Table) MaxChainLength() int {
	longest := 0
	for _, head := range t.buckets {
		n := 0
		for e := head; e != nil; e = e.next {
			n++
		}
		if n > longest {
			longest = n
		}
	}
	return longest
}

func (t *Table) bucketIndex(key []byte) int {
	return int(t.hasher.Sum64(key) & uint64(len(t.buckets)-1))
}

func (t *Table) grow() {
	old := t.buckets
	t.buckets = make([]*entry, len(old)*2)
	for _, head := range old {
		for e := head; e != nil; {
			next := e.next
			i := int(t.hasher.Sum64([]byte(e.key)) & uint64(len(t.buckets)-1))
			e.next = t.buckets[i]
			t.buckets[i] = e
			e = next
		}
	}
}
