package server

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"shbf"
	"shbf/internal/core"
)

// errNamespaceExists reports a create of a name already registered
// (mapped to 409/StatusConflict by the transports).
var errNamespaceExists = errors.New("namespace already exists")

// Multi-tenant namespaces. One daemon serves many logical filter trios
// — membership, association, multiplicity — each keyed by a namespace
// name with its own geometry (bits, k, shards, seed) and window policy
// (generations, tick). The v1 API is a shim over the namespace named
// DefaultNamespace, which always exists; the v2 HTTP API and the ShBP
// binary protocol address any namespace. Snapshots concatenate every
// namespace's envelopes, so a restart restores the whole tenant set.

// DefaultNamespace is the namespace the v1 endpoints serve and the one
// built from the daemon's flags at startup. It cannot be deleted.
const DefaultNamespace = "default"

// maxNamespaces bounds the tenant count so a misbehaving client cannot
// allocate unbounded filter memory via POST /v2/namespaces.
const maxNamespaces = 1024

// namespace is one tenant: the three filters and the tenant's served-
// query counters.
type namespace struct {
	name  string
	mem   membershipFilter
	assoc associationFilter
	mult  multiplicityFilter
	stats counters
	// limiter is the tenant's data-plane rate quota (admission.go);
	// nil = unlimited. Like frozen it is process-local: snapshots
	// persist filter state, not admission policy.
	limiter *rateLimiter
	// frozen marks the tenant read-only after a freeze (see freeze.go);
	// process-local, not persisted in snapshots.
	frozen atomic.Bool
}

// NamespaceConfig is the JSON shape of POST /v2/namespaces (and the
// OpNamespaceCreate blob): per-tenant overrides of the daemon's base
// geometry. Zero-valued fields inherit the daemon's configuration;
// pointer fields distinguish "absent" from a meaningful zero.
type NamespaceConfig struct {
	Name string `json:"name"`

	MembershipBits   int `json:"membership_bits,omitempty"`
	MembershipK      int `json:"membership_k,omitempty"`
	AssociationBits  int `json:"association_bits,omitempty"`
	AssociationK     int `json:"association_k,omitempty"`
	MultiplicityBits int `json:"multiplicity_bits,omitempty"`
	MultiplicityK    int `json:"multiplicity_k,omitempty"`
	MaxCount         int `json:"max_count,omitempty"`
	Shards           int `json:"shards,omitempty"`

	// Seed overrides the daemon seed; zero is a valid seed, so absence
	// is the nil pointer.
	Seed *uint64 `json:"seed,omitempty"`

	// WindowGenerations selects the tenant's window policy: nil
	// inherits the daemon's, 0 forces classic unbounded filters, ≥ 2
	// runs a sliding window of that many generations.
	WindowGenerations *int `json:"window_generations,omitempty"`

	// WindowTickSeconds is the tenant's rotation period, honored by the
	// daemon's -tick maintenance loop (see OPERATIONS.md §5); nil
	// inherits, 0 disables clock-driven rotation for the tenant.
	WindowTickSeconds *float64 `json:"window_tick_seconds,omitempty"`

	// MaxBits is the tenant's bit budget: the resolved trio's total
	// filter bits (all generations) may not exceed it. Enforced at
	// create — a geometry over budget is rejected (400), it does not
	// silently shrink. Zero = no per-tenant budget.
	MaxBits int64 `json:"max_bits,omitempty"`
	// RatePerSec is the tenant's data-plane rate quota in keys per
	// second across all ops of the trio; excess traffic is shed with
	// 429/StatusOverloaded, writes before reads (see admission.go).
	// Zero = unlimited. Process-local: not persisted in snapshots.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// RateBurst is the quota's burst allowance in keys (the token
	// bucket's capacity). Zero defaults to one second's worth
	// (RatePerSec).
	RateBurst float64 `json:"rate_burst,omitempty"`
}

// resolve applies the per-tenant overrides onto the daemon's base
// config, returning the config the namespace's filters are built from.
func (nc NamespaceConfig) resolve(base Config) Config {
	cfg := base
	cfg.SnapshotPath = "" // persistence is daemon-level, not per-tenant
	if nc.MembershipBits != 0 {
		cfg.MembershipBits = nc.MembershipBits
	}
	if nc.MembershipK != 0 {
		cfg.MembershipK = nc.MembershipK
	}
	if nc.AssociationBits != 0 {
		cfg.AssociationBits = nc.AssociationBits
	}
	if nc.AssociationK != 0 {
		cfg.AssociationK = nc.AssociationK
	}
	if nc.MultiplicityBits != 0 {
		cfg.MultiplicityBits = nc.MultiplicityBits
	}
	if nc.MultiplicityK != 0 {
		cfg.MultiplicityK = nc.MultiplicityK
	}
	if nc.MaxCount != 0 {
		cfg.MaxCount = nc.MaxCount
	}
	if nc.Shards != 0 {
		cfg.Shards = nc.Shards
	}
	if nc.Seed != nil {
		cfg.Seed = *nc.Seed
	}
	if nc.WindowGenerations != nil {
		cfg.WindowGenerations = *nc.WindowGenerations
		if *nc.WindowGenerations == 0 {
			cfg.WindowTick = 0
		}
	}
	if nc.WindowTickSeconds != nil {
		cfg.WindowTick = time.Duration(*nc.WindowTickSeconds * float64(time.Second))
	}
	return cfg
}

// validNamespaceName enforces the namespace charset: 1–64 bytes of
// letters, digits, '.', '_' and '-' (names travel in URLs, wire frames
// and snapshot containers).
func validNamespaceName(name string) error {
	if len(name) == 0 || len(name) > 64 {
		return fmt.Errorf("server: namespace name must be 1–64 bytes, got %d", len(name))
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("server: namespace name %q has invalid byte %q (want [A-Za-z0-9._-])", name, c)
		}
	}
	return nil
}

// newNamespace builds a namespace's filter trio from a resolved config.
func newNamespace(name string, cfg Config) (*namespace, error) {
	if cfg.WindowGenerations < 0 {
		return nil, fmt.Errorf("server: negative WindowGenerations %d", cfg.WindowGenerations)
	}
	if cfg.WindowTick != 0 && cfg.WindowGenerations < 2 {
		return nil, fmt.Errorf("server: WindowTick requires WindowGenerations ≥ 2")
	}
	memSpec, assocSpec, multSpec := cfg.Specs()
	memF, err := shbf.New(memSpec)
	if err != nil {
		return nil, fmt.Errorf("server: membership filter: %w", err)
	}
	assocF, err := shbf.New(assocSpec)
	if err != nil {
		return nil, fmt.Errorf("server: association filter: %w", err)
	}
	multF, err := shbf.New(multSpec)
	if err != nil {
		return nil, fmt.Errorf("server: multiplicity filter: %w", err)
	}
	return &namespace{
		name:  name,
		mem:   memF.(membershipFilter),
		assoc: assocF.(associationFilter),
		mult:  multF.(multiplicityFilter),
	}, nil
}

// windowed reports whether the namespace's filters rotate.
func (ns *namespace) windowed() bool {
	_, ok := ns.mem.(shbf.Windowed)
	return ok
}

// filters returns the trio in canonical (membership, association,
// multiplicity) order with their serving names.
func (ns *namespace) filters() []struct {
	name   string
	filter shbf.Filter
} {
	return []struct {
		name   string
		filter shbf.Filter
	}{
		{"membership", ns.mem},
		{"association", ns.assoc},
		{"multiplicity", ns.mult},
	}
}

// --- registry --------------------------------------------------------------

// Namespace resolution and CRUD. The registry map is guarded by
// Server.mu; the namespaces themselves are internally synchronized
// (lock-striped shards), so handlers hold the registry lock only long
// enough to look a tenant up.

// lookup resolves a namespace name ("" = default).
func (s *Server) lookup(name string) (*namespace, error) {
	if name == "" {
		name = DefaultNamespace
	}
	s.mu.RLock()
	ns := s.namespaces[name]
	s.mu.RUnlock()
	if ns == nil {
		return nil, fmt.Errorf("server: unknown namespace %q", name)
	}
	return ns, nil
}

// defaultNS returns the always-present default namespace.
func (s *Server) defaultNS() *namespace {
	ns, err := s.lookup(DefaultNamespace)
	if err != nil {
		panic("server: default namespace missing") // unreachable: New creates it, Delete refuses it
	}
	return ns
}

// CreateNamespace builds a new tenant from the daemon's base config
// with nc's overrides applied. The name must be new; creating an
// existing namespace is a conflict (create is not idempotent — a
// second creation with different geometry would silently serve the
// first's).
func (s *Server) CreateNamespace(nc NamespaceConfig) error {
	if err := validNamespaceName(nc.Name); err != nil {
		return err
	}
	if nc.RatePerSec < 0 || nc.RateBurst < 0 {
		return fmt.Errorf("server: namespace %q: negative rate quota", nc.Name)
	}
	ns, err := newNamespace(nc.Name, nc.resolve(s.cfg))
	if err != nil {
		return err
	}
	// Per-tenant bit budget: a geometry over budget is the creator's
	// config error, rejected outright rather than shrunk.
	if bits := ns.totalBits(); nc.MaxBits > 0 && bits > nc.MaxBits {
		return fmt.Errorf("server: namespace %q: geometry needs %d filter bits, over its %d-bit budget",
			nc.Name, bits, nc.MaxBits)
	}
	if nc.RatePerSec > 0 {
		ns.limiter = newRateLimiter(nc.RatePerSec, nc.RateBurst)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.namespaces[nc.Name] != nil {
		return fmt.Errorf("server: namespace %q: %w", nc.Name, errNamespaceExists)
	}
	if len(s.namespaces) >= maxNamespaces {
		return fmt.Errorf("server: namespace limit (%d) reached", maxNamespaces)
	}
	// Daemon-wide memory ceiling: past it the daemon is full, and the
	// create is shed as an overload (429/StatusOverloaded).
	if err := s.chargeBitsLocked(ns.totalBits()); err != nil {
		return err
	}
	s.namespaces[nc.Name] = ns
	return nil
}

// DeleteNamespace removes a tenant and its filters. The default
// namespace cannot be deleted — the v1 shims serve it.
func (s *Server) DeleteNamespace(name string) error {
	if name == DefaultNamespace {
		return fmt.Errorf("server: the %q namespace cannot be deleted", DefaultNamespace)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ns := s.namespaces[name]
	if ns == nil {
		return fmt.Errorf("server: unknown namespace %q", name)
	}
	s.usedBits -= ns.totalBits() // refund the memory ceiling
	delete(s.namespaces, name)
	return nil
}

// Namespaces returns the current tenant names, sorted.
func (s *Server) Namespaces() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.namespaces))
	for name := range s.namespaces {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

// snapshotList returns the namespaces sorted by name, the iteration
// order of stats summaries and snapshot containers.
func (s *Server) snapshotList() []*namespace {
	s.mu.RLock()
	list := make([]*namespace, 0, len(s.namespaces))
	for _, ns := range s.namespaces {
		list = append(list, ns)
	}
	s.mu.RUnlock()
	sort.Slice(list, func(i, j int) bool { return list[i].name < list[j].name })
	return list
}

// NamespaceInfo is one tenant's summary in GET /v2/namespaces and the
// OpNamespaceList reply.
type NamespaceInfo struct {
	Name     string `json:"name"`
	Shards   int    `json:"shards"`
	Windowed bool   `json:"windowed"`
	// Generations and Epoch describe the window ring (windowed
	// tenants only).
	Generations int    `json:"generations,omitempty"`
	Epoch       uint64 `json:"epoch,omitempty"`
	// TickSeconds is the tenant's rotation period (windowed tenants
	// with clock-driven rotation only).
	TickSeconds float64 `json:"tick_seconds,omitempty"`
	// MembershipN, AssociationN and MultiplicityN are stored-element
	// counts (association sums both sets; −1 where no exact set is
	// tracked).
	MembershipN   int `json:"membership_n"`
	AssociationN  int `json:"association_n"`
	MultiplicityN int `json:"multiplicity_n"`
	// TotalBits sums the three filters' bit budgets (one generation in
	// window mode).
	TotalBits int `json:"total_bits"`
	// EstimatedFPR is the membership filter's served false-positive
	// rate at current occupancy — the same figure the namespace's own
	// stats endpoint reports (both come from membershipStatsOf).
	EstimatedFPR float64 `json:"estimated_fpr"`
	// Frozen reports a read-only tenant (see freeze.go): writes answer
	// 409 until the namespace is deleted and recreated.
	Frozen bool `json:"frozen,omitempty"`
}

// info assembles a namespace's summary.
func (ns *namespace) info() NamespaceInfo {
	memStats, assocStats, multStats := ns.mem.Stats(), ns.assoc.Stats(), ns.mult.Stats()
	in := NamespaceInfo{
		Name:          ns.name,
		Shards:        memStats.Shards,
		Windowed:      ns.windowed(),
		MembershipN:   memStats.N,
		AssociationN:  assocStats.N,
		MultiplicityN: multStats.N,
		TotalBits:     specBits(ns.mem.Spec()) + specBits(ns.assoc.Spec()) + specBits(ns.mult.Spec()),
		EstimatedFPR:  membershipStatsOf(ns).EstimatedFPR,
		Frozen:        ns.frozen.Load(),
	}
	if w, ok := ns.mem.(shbf.Windowed); ok {
		win := w.Window()
		in.Generations = win.Generations
		in.Epoch = win.Epoch
		in.TickSeconds = win.Tick.Seconds()
	}
	return in
}

// specBits returns a filter spec's per-generation bit budget.
func specBits(spec core.Spec) int { return spec.M }
