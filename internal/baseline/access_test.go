package baseline

// Tests tying the baselines' measured memory accesses to the analytic
// expected-access models of internal/analytic — the link Figures 8 and
// 10(b) depend on.

import (
	"math"
	"testing"

	"shbf/internal/analytic"
	"shbf/internal/memmodel"
)

func TestBFExpectedAccessesMatchModel(t *testing.T) {
	const m, n, k = 33024, 1000, 8
	var acc memmodel.Counter
	f, err := NewBF(m, k, baselineSeed(1), WithAccessCounter(&acc))
	if err != nil {
		t.Fatal(err)
	}
	members := genElements(n, 1)
	for _, e := range members {
		f.Add(e)
	}

	// Negatives only.
	negs := genDisjoint(50000, 2)
	acc.Reset()
	for _, e := range negs {
		f.Contains(e)
	}
	gotNeg := float64(acc.Reads()) / float64(len(negs))
	wantNeg := analytic.ExpectedAccessesBF(m, n, k, 0)
	if math.Abs(gotNeg-wantNeg)/wantNeg > 0.05 {
		t.Fatalf("negative accesses %.3f vs model %.3f", gotNeg, wantNeg)
	}

	// Members: always exactly k.
	acc.Reset()
	for _, e := range members {
		f.Contains(e)
	}
	gotMem := float64(acc.Reads()) / float64(len(members))
	if gotMem != k {
		t.Fatalf("member accesses %.3f, want exactly %d", gotMem, k)
	}
}

func TestIBFExpectedAccessesMatchModel(t *testing.T) {
	const n, k = 5000, 8
	nf := float64(n)
	m := int(nf * k / math.Ln2)
	s1only, both, s2only := buildIBFSets(n*3/4, n/4, n*3/4, 3)
	s1 := append(append([][]byte{}, s1only...), both...)
	s2 := append(append([][]byte{}, s2only...), both...)
	m1 := int(float64(len(s1)) * k / math.Ln2)
	var acc memmodel.Counter
	f, err := BuildIBF(s1, s2, m1, m1, k, baselineSeed(5), WithAccessCounter(&acc))
	if err != nil {
		t.Fatal(err)
	}
	_ = m

	queries := 0
	acc.Reset()
	limit := n / 4
	for _, group := range [][][]byte{s1only[:limit], both[:limit], s2only[:limit]} {
		for _, e := range group {
			f.Query(e)
			queries++
		}
	}
	got := float64(acc.Reads()) / float64(queries)
	want := analytic.ExpectedAccessesIBF(m1, len(s1), m1, len(s2), k)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("iBF accesses %.3f vs model %.3f", got, want)
	}
}

// baselineSeed keeps the option noise down in tests.
func baselineSeed(s uint64) Option { return WithSeed(s) }
