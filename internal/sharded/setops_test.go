package sharded

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"shbf/internal/core"
)

func TestUnionEqualsDirectBuild(t *testing.T) {
	// OR-ing replica B into replica A must be byte-identical to one
	// filter that held both key sets all along — the property cluster
	// anti-entropy stands on.
	newF := func() *Filter {
		f, err := New(1<<16, 8, 4, core.WithSeed(11))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b, direct := newF(), newF(), newF()
	setA, setB := genElements(700, 21), genElements(700, 22)
	if err := a.AddAll(setA); err != nil {
		t.Fatal(err)
	}
	if err := b.AddAll(setB); err != nil {
		t.Fatal(err)
	}
	if err := direct.AddAll(setA); err != nil {
		t.Fatal(err)
	}
	if err := direct.AddAll(setB); err != nil {
		t.Fatal(err)
	}
	if err := a.Union(b); err != nil {
		t.Fatalf("Union: %v", err)
	}
	got, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("union differs from direct construction")
	}
	if a.N() != direct.N() {
		t.Fatalf("union N = %d, direct N = %d", a.N(), direct.N())
	}
	// b is the read side; it must be untouched.
	if b.N() != 700 {
		t.Fatalf("source filter mutated: N = %d", b.N())
	}
}

func TestUnionSelfIsIdentity(t *testing.T) {
	f, err := New(1<<14, 8, 2, core.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddAll(genElements(100, 1)); err != nil {
		t.Fatal(err)
	}
	before, _ := f.MarshalBinary()
	if err := f.Union(f); err != nil {
		t.Fatalf("self-union: %v", err)
	}
	after, _ := f.MarshalBinary()
	if !bytes.Equal(before, after) {
		t.Fatal("self-union changed the filter")
	}
}

func TestUnionIncompatibleRejected(t *testing.T) {
	base, err := New(1<<14, 8, 4, core.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := base.AddAll(genElements(50, 9)); err != nil {
		t.Fatal(err)
	}
	before, _ := base.MarshalBinary()
	mk := func(bits, k, shards int, seed uint64) *Filter {
		f, err := New(bits, k, shards, core.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	for name, other := range map[string]*Filter{
		"bits differ":   mk(1<<15, 8, 4, 5),
		"k differs":     mk(1<<14, 6, 4, 5),
		"shards differ": mk(1<<14, 8, 8, 5),
		"seed differs":  mk(1<<14, 8, 4, 6),
	} {
		err := base.Union(other)
		if err == nil {
			t.Fatalf("%s: incompatible union accepted", name)
		}
		if !errors.Is(err, ErrIncompatible) {
			t.Errorf("%s: error is not ErrIncompatible: %v", name, err)
		}
	}
	after, _ := base.MarshalBinary()
	if !bytes.Equal(before, after) {
		t.Fatal("rejected unions mutated the filter")
	}
}

func TestUnionConcurrentWithTraffic(t *testing.T) {
	// Union holds shard-pair locks while readers, writers and an
	// opposite-direction union run concurrently; under -race this is
	// the deadlock/data-race probe for the anti-entropy path.
	newF := func(seed int64) *Filter {
		f, err := New(1<<16, 8, 4, core.WithSeed(17))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.AddAll(genElements(500, seed)); err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := newF(31), newF(32)
	probe := genElements(200, 33)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				switch i % 4 {
				case 0:
					if err := a.Union(b); err != nil {
						t.Errorf("a.Union(b): %v", err)
					}
				case 1:
					if err := b.Union(a); err != nil {
						t.Errorf("b.Union(a): %v", err)
					}
				case 2:
					a.ContainsAll(nil, probe)
					b.ContainsAll(nil, probe)
				case 3:
					if err := a.AddAll(probe[:10]); err != nil {
						t.Errorf("AddAll: %v", err)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	// After mutual unions, both filters contain both original sets.
	for _, keys := range [][][]byte{genElements(500, 31), genElements(500, 32)} {
		res := a.ContainsAll(nil, keys)
		for i, ok := range res {
			if !ok {
				t.Fatalf("union lost key %d", i)
			}
		}
	}
}

func newTestMultiplicity(t *testing.T, opts ...core.Option) *Multiplicity {
	t.Helper()
	f, err := NewMultiplicity(1<<16, 4, 16, 4, append([]core.Option{core.WithSeed(19)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMultiplicityUnionNeverUnderestimates(t *testing.T) {
	a, b := newTestMultiplicity(t), newTestMultiplicity(t)
	keys := genElements(300, 41)
	for i, k := range keys {
		for j := 0; j < 1+i%4; j++ {
			if err := a.Insert(k); err != nil {
				t.Fatal(err)
			}
		}
		for j := 0; j < 1+(i*3)%6; j++ {
			if err := b.Insert(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := a.Union(b); err != nil {
		t.Fatalf("Union: %v", err)
	}
	for i, k := range keys {
		want := 1 + i%4
		if w2 := 1 + (i*3)%6; w2 > want {
			want = w2
		}
		if got := a.Count(k); got < want {
			t.Fatalf("key %d: merged count %d underestimates %d", i, got, want)
		}
	}
	// b is the read side; its counts must be untouched.
	for i, k := range keys[:20] {
		if got := b.Count(k); got < 1+(i*3)%6 {
			t.Fatalf("source filter mutated: key %d count %d", i, got)
		}
	}
}

func TestMultiplicityUnionIdempotentAndSelf(t *testing.T) {
	a, b := newTestMultiplicity(t), newTestMultiplicity(t)
	keys := genElements(100, 43)
	for i, k := range keys {
		for j := 0; j < 1+i%5; j++ {
			if err := b.Insert(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	first := a.CountAll(nil, keys)
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if err := a.Union(a); err != nil {
		t.Fatal(err)
	}
	again := a.CountAll(nil, keys)
	for i := range keys {
		if first[i] != again[i] {
			t.Fatalf("key %d: count changed %d → %d on re-union", i, first[i], again[i])
		}
	}
	if a.N() != b.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), b.N())
	}
}

func TestMultiplicityUnionIncompatibleRejected(t *testing.T) {
	base := newTestMultiplicity(t)
	if err := base.Insert([]byte("probe")); err != nil {
		t.Fatal(err)
	}
	mk := func(bits, k, c, shards int, opts ...core.Option) *Multiplicity {
		f, err := NewMultiplicity(bits, k, c, shards, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	for name, other := range map[string]*Multiplicity{
		"bits differ":   mk(1<<15, 4, 16, 4, core.WithSeed(19)),
		"k differs":     mk(1<<16, 8, 16, 4, core.WithSeed(19)),
		"c differs":     mk(1<<16, 4, 8, 4, core.WithSeed(19)),
		"shards differ": mk(1<<16, 4, 16, 8, core.WithSeed(19)),
		"seed differs":  mk(1<<16, 4, 16, 4, core.WithSeed(20)),
		"unsafe mode":   mk(1<<16, 4, 16, 4, core.WithSeed(19), core.WithUnsafeUpdates()),
	} {
		err := base.Union(other)
		if err == nil {
			t.Fatalf("%s: incompatible union accepted", name)
		}
		if !errors.Is(err, ErrIncompatible) {
			t.Errorf("%s: error is not ErrIncompatible: %v", name, err)
		}
	}
	if got := base.Count([]byte("probe")); got < 1 {
		t.Fatalf("rejected unions lost the probe key (count %d)", got)
	}
}

func TestMultiplicityUnionConcurrentWithTraffic(t *testing.T) {
	a, b := newTestMultiplicity(t), newTestMultiplicity(t)
	probe := genElements(100, 47)
	for _, k := range probe {
		if err := b.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				switch i % 4 {
				case 0:
					if err := a.Union(b); err != nil {
						t.Errorf("a.Union(b): %v", err)
					}
				case 1:
					b.CountAll(nil, probe)
				case 2:
					a.CountAll(nil, probe)
				case 3:
					for _, k := range probe[:10] {
						// Repeated inserts of the same keys legitimately
						// hit the c cap; only unexpected errors fail.
						if err := a.Insert(k); err != nil && !errors.Is(err, core.ErrCountOverflow) {
							t.Errorf("Insert: %v", err)
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, k := range probe {
		if got := a.Count(k); got < 1 {
			t.Fatalf("key %d lost after concurrent unions (count %d)", i, got)
		}
	}
}
