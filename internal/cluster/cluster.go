// Package cluster defines the shbfd cluster map: the versioned
// document that partitions the 64-bit digest ring across N daemon
// nodes, the way internal/sharded's digest routing partitions keys
// across in-process shards — lifted one level up, from "which lock
// stripe" to "which machine".
//
// A Map is a node list plus an ordered list of hash ranges. Every key's
// one-pass digest (hashing.KeyDigest) has a 64-bit high lane; range i
// owns the keys whose high lane falls in [Ranges[i].Start,
// Ranges[i+1].Start) (the last range runs to the top of the ring). Each
// range names R owner nodes: the first is the primary (reads route
// there), and all R accept writes, so replicas stay convergent under
// the union-merge anti-entropy the serving layer exposes (replicas
// share Spec + seed, so ShBF bit arrays merge by OR — see
// core.Membership.Union and the /v2/namespaces/{ns}/merge endpoint).
//
// Shard routing inside one node consumes the low bits of the same lane
// (Digest.Shard masks with shards−1 ≤ 2^20), node routing compares the
// full lane against range starts that in practice differ in the high
// bits — the two routing levels read disjoint parts of the lane and
// cannot correlate.
//
// The map travels as JSON: on disk as shbfd's -cluster-file, over the
// wire from GET /v2/cluster and the ShBP cluster-map op (any node
// serves the map it was started with, so a client needs only one seed
// address). This PR ships the static form — rebalancing, map push, and
// epoch-fenced handoff are follow-ons; Version exists so those can be
// built without a wire change.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
)

// MaxNodes bounds a map's node count, keeping hostile documents from
// driving large allocations (a serving cluster of this size would be
// re-architected long before the bound matters).
const MaxNodes = 4096

// ErrInvalid tags every validation failure, so callers can distinguish
// a malformed map from I/O errors with errors.Is.
var ErrInvalid = errors.New("cluster: invalid map")

// Node is one shbfd process: an operator-chosen identifier plus its
// two listener addresses.
type Node struct {
	// ID names the node in range ownership lists and in shbfd's
	// -node-id flag (same charset rules as namespace names).
	ID string `json:"id"`
	// Addr is the node's ShBP (binary protocol) listener, host:port.
	Addr string `json:"addr"`
	// HTTPAddr is the node's HTTP listener, host:port (optional when a
	// deployment is ShBP-only).
	HTTPAddr string `json:"http_addr,omitempty"`
}

// Range is one contiguous slice of the digest ring. It covers
// [Start, next range's Start), with the map's last range covering
// through the top of the 64-bit space.
type Range struct {
	// Start is the inclusive lower bound on the digest high lane.
	// Ranges are sorted strictly ascending and the first Start must be
	// 0, so the ranges tile the whole ring with no gaps or overlaps.
	Start uint64 `json:"start"`
	// Owners are node IDs, primary first. All owners accept writes
	// (replication); reads route to the primary.
	Owners []string `json:"owners"`
}

// Map is the cluster document: who the nodes are and which one owns
// each slice of the digest ring.
type Map struct {
	// Version orders map revisions; operators bump it on every edit.
	Version uint64 `json:"version"`
	// Replication is the owner count per range (R). Every range must
	// name exactly this many owners.
	Replication int `json:"replication"`
	// Nodes lists the cluster's daemons.
	Nodes []Node `json:"nodes"`
	// Ranges tiles the digest ring, sorted ascending by Start.
	Ranges []Range `json:"ranges"`
}

// Validate checks the structural invariants routing depends on: at
// least one node, unique node IDs and addresses present, ranges sorted
// strictly ascending from 0 (no gaps, overlaps or duplicates by
// construction), and every range naming exactly Replication distinct,
// known owners. All failures wrap ErrInvalid.
func (m *Map) Validate() error {
	if len(m.Nodes) == 0 {
		return fmt.Errorf("%w: no nodes", ErrInvalid)
	}
	if len(m.Nodes) > MaxNodes {
		return fmt.Errorf("%w: %d nodes exceeds the %d-node bound", ErrInvalid, len(m.Nodes), MaxNodes)
	}
	ids := make(map[string]bool, len(m.Nodes))
	for i, n := range m.Nodes {
		if n.ID == "" {
			return fmt.Errorf("%w: node %d has no id", ErrInvalid, i)
		}
		if ids[n.ID] {
			return fmt.Errorf("%w: duplicate node id %q", ErrInvalid, n.ID)
		}
		ids[n.ID] = true
		if n.Addr == "" && n.HTTPAddr == "" {
			return fmt.Errorf("%w: node %q has no address", ErrInvalid, n.ID)
		}
	}
	if m.Replication < 1 || m.Replication > len(m.Nodes) {
		return fmt.Errorf("%w: replication %d out of [1, %d nodes]", ErrInvalid, m.Replication, len(m.Nodes))
	}
	if len(m.Ranges) == 0 {
		return fmt.Errorf("%w: no ranges", ErrInvalid)
	}
	if m.Ranges[0].Start != 0 {
		return fmt.Errorf("%w: first range starts at %d, leaving [0, %d) unowned", ErrInvalid, m.Ranges[0].Start, m.Ranges[0].Start)
	}
	for i, r := range m.Ranges {
		if i > 0 && r.Start <= m.Ranges[i-1].Start {
			return fmt.Errorf("%w: range %d start %d does not ascend past %d (overlapping or duplicate ranges)",
				ErrInvalid, i, r.Start, m.Ranges[i-1].Start)
		}
		if len(r.Owners) != m.Replication {
			return fmt.Errorf("%w: range %d has %d owners, want replication factor %d", ErrInvalid, i, len(r.Owners), m.Replication)
		}
		seen := make(map[string]bool, len(r.Owners))
		for _, o := range r.Owners {
			if !ids[o] {
				return fmt.Errorf("%w: range %d owner %q is not a node", ErrInvalid, i, o)
			}
			if seen[o] {
				return fmt.Errorf("%w: range %d names owner %q twice", ErrInvalid, i, o)
			}
			seen[o] = true
		}
	}
	return nil
}

// RangeFor returns the range owning digest high lane v. The map must
// have passed Validate (ranges tile the ring, so every v has exactly
// one owner range).
func (m *Map) RangeFor(v uint64) *Range {
	// Binary search for the last range with Start ≤ v; sort.Search
	// finds the first with Start > v.
	i := sort.Search(len(m.Ranges), func(i int) bool { return m.Ranges[i].Start > v })
	return &m.Ranges[i-1]
}

// NodeByID resolves a node id (nil when absent).
func (m *Map) NodeByID(id string) *Node {
	for i := range m.Nodes {
		if m.Nodes[i].ID == id {
			return &m.Nodes[i]
		}
	}
	return nil
}

// Decode parses and validates a JSON cluster map. Unknown fields are
// rejected — a typoed field in an operator's cluster file must not
// silently vanish.
func Decode(data []byte) (*Map, error) {
	var m Map
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after map document", ErrInvalid)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Encode serializes the map as indented JSON (the -cluster-file and
// GET /v2/cluster form).
func (m *Map) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// LoadFile reads and validates a cluster map file (shbfd -cluster-file).
func LoadFile(path string) (*Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading map: %w", err)
	}
	m, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", path, err)
	}
	return m, nil
}

// Uniform builds a map that splits the ring into one equal range per
// node, range i owned by nodes[i] as primary with the next
// replication−1 nodes (ring order) as replicas — the static layout the
// in-process test harness and small deployments start from.
func Uniform(version uint64, nodes []Node, replication int) (*Map, error) {
	m := &Map{Version: version, Replication: replication, Nodes: nodes}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrInvalid)
	}
	step := ^uint64(0)/uint64(len(nodes)) + 1 // 2^64 / n, rounded so n·step wraps past the top
	for i := range nodes {
		owners := make([]string, 0, replication)
		for j := 0; j < replication && j < len(nodes); j++ {
			owners = append(owners, nodes[(i+j)%len(nodes)].ID)
		}
		m.Ranges = append(m.Ranges, Range{Start: uint64(i) * step, Owners: owners})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
