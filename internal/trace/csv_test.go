package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseCSVBasic(t *testing.T) {
	in := `# comment
10.0.0.1,192.168.1.9,443,51724,6,12

172.16.0.1,8.8.8.8,53311,53,17
`
	flows, err := ParseCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2 {
		t.Fatalf("got %d flows", len(flows))
	}
	f := flows[0]
	if f.ID.SrcIP() != [4]byte{10, 0, 0, 1} || f.ID.DstIP() != [4]byte{192, 168, 1, 9} {
		t.Errorf("IPs: %v -> %v", f.ID.SrcIP(), f.ID.DstIP())
	}
	if f.ID.SrcPort() != 443 || f.ID.DstPort() != 51724 || f.ID.Proto() != 6 {
		t.Errorf("ports/proto: %d %d %d", f.ID.SrcPort(), f.ID.DstPort(), f.ID.Proto())
	}
	if f.Count != 12 {
		t.Errorf("count = %d", f.Count)
	}
	// 5-field record defaults to count 1.
	if flows[1].Count != 1 {
		t.Errorf("default count = %d", flows[1].Count)
	}
	if flows[1].ID.Proto() != 17 {
		t.Errorf("proto = %d", flows[1].ID.Proto())
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields": "10.0.0.1,8.8.8.8,1,2",
		"bad ip":         "10.0.0,8.8.8.8,1,2,6",
		"bad octet":      "10.0.0.999,8.8.8.8,1,2,6",
		"bad port":       "10.0.0.1,8.8.8.8,70000,2,6",
		"bad proto":      "10.0.0.1,8.8.8.8,1,2,300",
		"bad count":      "10.0.0.1,8.8.8.8,1,2,6,zero",
		"negative count": "10.0.0.1,8.8.8.8,1,2,6,-1",
		"non-numeric ip": "ten.0.0.1,8.8.8.8,1,2,6",
	}
	for name, line := range cases {
		if _, err := ParseCSV(strings.NewReader(line)); err == nil {
			t.Errorf("%s: accepted %q", name, line)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	gen := NewGenerator(9)
	flows := gen.Multiset(500, 30, 1.5)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, flows); err != nil {
		t.Fatal(err)
	}
	got, err := ParseCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(flows) {
		t.Fatalf("round trip: %d vs %d flows", len(got), len(flows))
	}
	for i := range flows {
		if got[i] != flows[i] {
			t.Fatalf("flow %d: %+v vs %+v", i, got[i], flows[i])
		}
	}
}

func TestCSVInteropWithBinary(t *testing.T) {
	// CSV-imported flows feed the binary writer seamlessly.
	in := "1.2.3.4,5.6.7.8,100,200,6,3\n"
	flows, err := ParseCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := Write(&bin, flows); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != flows[0] {
		t.Fatal("binary round trip of CSV flow failed")
	}
	if got[0].ID.String() != "1.2.3.4:100->5.6.7.8:200/6" {
		t.Fatalf("String() = %q", got[0].ID.String())
	}
}
