package sharded

import (
	"errors"
	"fmt"
	"sync"
)

// Set algebra on the sharded membership filter, the serving-layer form
// of core.Membership.Union: replicas built from one Spec (same total
// bits, k, shard count, base seed) route every key to the same shard
// and place it at the same positions, so OR-ing shard i into shard i
// yields exactly the filter of the union. This is what cluster
// anti-entropy rides on — ship a replica's envelope, union it in, done
// (see internal/cluster and the daemon's /v2/namespaces/{ns}/merge).

// ErrIncompatible reports a union between filters of diverging Spec —
// different geometry or seed would interleave bit patterns that mean
// different keys, silently corrupting both answer sets, so the merge
// is refused with f unchanged.
var ErrIncompatible = errors.New("sharded: incompatible filters")

// unionMu serializes Union calls process-wide. Union holds two shard
// locks at once (dst write, src read); with at most one union in
// flight no lock-order cycle can form against the single-lock query
// and update paths. Unions are rare anti-entropy events, so the
// serialization costs nothing that matters.
var unionMu sync.Mutex

// Union ORs other into f, making f represent the union of both key
// sets. The two filters must have identical Specs (total bits, k, w̄,
// shard count, base seed); otherwise ErrIncompatible is returned and f
// is unchanged. Safe for concurrent use with both filters' other
// operations — shards are merged one pair at a time, so queries keep
// flowing on every shard the merge is not currently touching.
// Union merges other into f by the counting-filter union — per shard,
// a counter-wise saturating add of C, an OR of B and a per-key max
// over the exact tables (core.CountingMultiplicity.Merge) — making f
// report, for every element, at least the larger of the two filters'
// multiplicities with no false negatives introduced. The Specs must
// match exactly (geometry, seed, counter width, update mode);
// otherwise ErrIncompatible is returned and f is unchanged. This is
// what lets edge agents pre-aggregate counts and ship them upstream as
// one envelope (internal/ingest) and replicas anti-entropy their
// multiplicity filters like their membership ones.
func (f *Multiplicity) Union(other *Multiplicity) error {
	fs, os := f.Spec(), other.Spec()
	if fs != os {
		return fmt.Errorf("%w: spec %+v vs %+v", ErrIncompatible, fs, os)
	}
	if f == other {
		return nil // self-union is the identity
	}
	unionMu.Lock()
	defer unionMu.Unlock()
	for i := range f.set.shards {
		dst, src := &f.set.shards[i], &other.set.shards[i]
		dst.mu.Lock()
		src.mu.RLock()
		err := dst.f.Merge(src.f)
		src.mu.RUnlock()
		dst.mu.Unlock()
		if err != nil {
			// Unreachable with equal Specs, but a corrupt filter must
			// not half-merge silently.
			return fmt.Errorf("%w: shard %d: %v", ErrIncompatible, i, err)
		}
	}
	return nil
}

func (f *Filter) Union(other *Filter) error {
	fs, os := f.Spec(), other.Spec()
	if fs != os {
		return fmt.Errorf("%w: spec %+v vs %+v", ErrIncompatible, fs, os)
	}
	if f == other {
		return nil // self-union is the identity
	}
	unionMu.Lock()
	defer unionMu.Unlock()
	for i := range f.set.shards {
		dst, src := &f.set.shards[i], &other.set.shards[i]
		dst.mu.Lock()
		src.mu.RLock()
		err := dst.f.Union(src.f)
		src.mu.RUnlock()
		dst.mu.Unlock()
		if err != nil {
			// Unreachable with equal Specs (shard seeds derive from the
			// base seed), but a corrupt filter must not half-merge
			// silently.
			return fmt.Errorf("%w: shard %d: %v", ErrIncompatible, i, err)
		}
	}
	return nil
}
