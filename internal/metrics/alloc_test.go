//go:build !race

package metrics

import (
	"testing"
	"time"
)

// The instruments sit inside the ShBP dispatch loop, which carries a
// zero-allocation contract (see internal/sharded/alloc_test.go).
// AllocsPerRun interacts badly with -race instrumentation, so these
// guards are skipped there; the CI test job runs them without -race.

func requireZeroAllocs(t *testing.T, name string, runs int, fn func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(runs, fn); avg != 0 {
		t.Errorf("%s: %.2f allocs/op, want 0", name, avg)
	}
}

func TestInstrumentUpdatesAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_alloc_total", "x", Label{"op", "add"})
	g := r.NewGauge("test_alloc_gauge", "x")
	h := r.NewHistogram("test_alloc_seconds", "x",
		[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1})

	requireZeroAllocs(t, "Counter.Inc", 1000, func() { c.Inc() })
	requireZeroAllocs(t, "Counter.Add", 1000, func() { c.Add(3) })
	requireZeroAllocs(t, "Gauge.Inc/Dec", 1000, func() { g.Inc(); g.Dec() })
	requireZeroAllocs(t, "Gauge.Set", 1000, func() { g.Set(9) })
	requireZeroAllocs(t, "Histogram.Observe", 1000, func() { h.Observe(37 * time.Microsecond) })
	requireZeroAllocs(t, "Histogram.Observe(+Inf)", 1000, func() { h.Observe(5 * time.Second) })
}
