package sharded

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"shbf/internal/core"
)

func genElements(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		b := make([]byte, 13)
		rng.Read(b)
		b[0], b[1], b[2] = byte(i), byte(i>>8), byte(i>>16)
		out[i] = b
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1000, 8, 0); err == nil {
		t.Error("accepted 0 shards")
	}
	if _, err := New(100, 8, 16); err == nil {
		t.Error("accepted starved shards")
	}
	f, err := New(1<<16, 8, 5) // rounds up to 8
	if err != nil {
		t.Fatal(err)
	}
	if f.Shards() != 8 {
		t.Fatalf("Shards = %d, want 8", f.Shards())
	}
}

func TestBasicOperations(t *testing.T) {
	f, err := New(1<<18, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	elems := genElements(5000, 1)
	for _, e := range elems {
		f.Add(e)
	}
	for _, e := range elems {
		if !f.Contains(e) {
			t.Fatal("false negative")
		}
	}
	if f.N() != 5000 {
		t.Fatalf("N = %d", f.N())
	}
	f.Reset()
	if f.N() != 0 || f.FillRatio() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestSeedVariesFilters(t *testing.T) {
	// The user's WithSeed must reach the shards: different seeds give
	// different false-positive patterns, equal seeds identical ones.
	build := func(seed uint64) *Filter {
		f, err := New(1<<16, 8, 4, core.WithSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range genElements(3000, 30) {
			f.Add(e)
		}
		return f
	}
	f1, f2, f3 := build(1), build(2), build(1)
	probes := genElements(50000, 31)
	diff12, diff13 := 0, 0
	for _, e := range probes {
		if f1.Contains(e) != f2.Contains(e) {
			diff12++
		}
		if f1.Contains(e) != f3.Contains(e) {
			diff13++
		}
	}
	if diff12 == 0 {
		t.Fatal("seeds 1 and 2 produced identical answers on every probe; WithSeed is being ignored")
	}
	if diff13 != 0 {
		t.Fatalf("equal seeds disagreed on %d probes; filters are not deterministic per seed", diff13)
	}
}

func TestShardCountCapped(t *testing.T) {
	// Huge shard counts must be rejected, not loop forever in the
	// power-of-two rounding.
	if _, err := New(1<<30, 8, maxShards+1); err == nil {
		t.Fatal("accepted an absurd shard count")
	}
}

func TestFPRMatchesMonolithic(t *testing.T) {
	// Sharding must not change the FPR beyond noise: compare against
	// the Equation 1 prediction at the same bits-per-element.
	const n, k = 20000, 8
	nf := float64(n)
	total := int(nf * k / math.Ln2)
	f, err := New(total, k, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range genElements(n, 2) {
		f.Add(e)
	}
	probes := genElements(200000, 3)
	for _, e := range probes {
		e[12] = 0xFF
	}
	fp := 0
	for _, e := range probes {
		if f.Contains(e) {
			fp++
		}
	}
	got := float64(fp) / float64(len(probes))
	want := math.Pow(0.5, k) // ≈ optimal-sizing FPR
	if got > want*1.6 {
		t.Fatalf("sharded FPR %.5f vs monolithic target %.5f", got, want)
	}
}

func TestConcurrentUse(t *testing.T) {
	// Run with -race: concurrent adders and readers across shards.
	f, err := New(1<<20, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	elems := genElements(20000, 4)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(elems); i += workers {
				f.Add(elems[i])
			}
			for i := 0; i < len(elems); i += workers {
				f.Contains(elems[i])
			}
		}(w)
	}
	wg.Wait()
	if f.N() != 20000 {
		t.Fatalf("N = %d after concurrent adds, want 20000", f.N())
	}
	for _, e := range elems {
		if !f.Contains(e) {
			t.Fatal("false negative after concurrent adds")
		}
	}
}

func TestShardBalance(t *testing.T) {
	f, err := New(1<<18, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range genElements(16000, 5) {
		f.Add(e)
	}
	// Expected 2000/shard; hashing keeps shards within a few σ.
	for i, st := range f.ShardStats() {
		if st.N < 1600 || st.N > 2400 {
			t.Fatalf("shard %d has %d elements, want ≈2000", i, st.N)
		}
	}
}

func BenchmarkContainsParallel(b *testing.B) {
	f, _ := New(1<<22, 8, 16)
	elems := genElements(65536, 1)
	for _, e := range elems {
		f.Add(e)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			f.Contains(elems[i&65535])
			i++
		}
	})
}
