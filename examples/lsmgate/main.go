// LSM read-path gating: the frozen-filter embedding the ShBZ container
// exists for.
//
// An LSM-style store keeps one mutable memtable plus a stack of
// immutable on-disk levels. Every level carries a Bloom-style filter so
// a point lookup can skip levels that cannot contain the key. The
// frozen container is exactly that shape: each flushed level's filter
// is compacted with shbf.Freeze into read-only ShBZ bytes, all levels
// are packed into a single ShBK stack file (one open, O(1) At per
// level), and the memtable keeps a live filter for in-flight writes.
//
// The program builds the store, then asserts the invariants a storage
// engine relies on — it exits nonzero if any fails:
//
//  1. no false negatives: every written key is admitted by the filter
//     of the level that holds it;
//  2. frozen ≡ live: each frozen level answers exactly like the live
//     filter it was frozen from, on every probe;
//  3. gating works: lookups for absent keys are rejected by the large
//     majority of levels (the FPR of the configuration), so a lookup
//     touches ~1 level instead of all of them.
//
// Run with: go run ./examples/lsmgate
package main

import (
	"fmt"
	"log"
	"math/rand"

	"shbf"
)

const (
	levels       = 8     // flushed immutable levels
	keysPerLevel = 4096  // keys per flush
	k            = 8     // probes per key
	bitsPerKey   = 12    // filter budget, ~0.3% FPR at k=8
	probeMisses  = 20000 // absent-key lookups for the gating measurement
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Write keysPerLevel keys into a live memtable filter, flush it:
	// freeze into a ShBZ container and start a fresh memtable. The live
	// filters are kept only to assert frozen ≡ live below.
	var (
		stack    shbf.FrozenStackBuilder
		lives    []shbf.Set
		perLevel [][][]byte
	)
	spec := shbf.Spec{Kind: shbf.KindMembership, M: keysPerLevel * bitsPerKey, K: k}
	for level := 0; level < levels; level++ {
		spec.Seed = uint64(level + 1)
		f, err := shbf.New(spec)
		if err != nil {
			log.Fatal(err)
		}
		mem := f.(shbf.Set)
		keys := make([][]byte, keysPerLevel)
		for i := range keys {
			keys[i] = key(rng, level, i)
		}
		if err := mem.AddAll(keys); err != nil {
			log.Fatal(err)
		}
		if err := stack.Add(f); err != nil {
			log.Fatal(err)
		}
		lives = append(lives, mem)
		perLevel = append(perLevel, keys)
	}
	stackFile := stack.Finish()

	// The read path opens the stack file once — in production this is
	// an mmap'd region; the container is served zero-copy either way.
	st, err := shbf.OpenFrozenStack(stackFile)
	if err != nil {
		log.Fatal(err)
	}
	frozen := make([]*shbf.Frozen, st.Len())
	for i := range frozen {
		if frozen[i], err = st.At(i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("stacked %d levels × %d keys: %d bytes (%d bytes/level)\n",
		levels, keysPerLevel, st.SizeBytes(), st.SizeBytes()/levels)

	// Invariant 1 — no false negatives: every key is admitted by its
	// own level's frozen filter.
	for level, keys := range perLevel {
		hits := frozen[level].ContainsAll(nil, keys)
		for i, ok := range hits {
			if !ok {
				log.Fatalf("FALSE NEGATIVE: level %d key %d rejected by its own filter", level, i)
			}
		}
	}
	fmt.Printf("no false negatives across %d written keys\n", levels*keysPerLevel)

	// Invariant 2 — frozen ≡ live: on a mixed probe set (present and
	// absent keys), each frozen level answers bit-for-bit like the live
	// filter it was frozen from.
	probes := make([][]byte, 0, 2*keysPerLevel)
	probes = append(probes, perLevel[0]...)
	for i := 0; i < keysPerLevel; i++ {
		probes = append(probes, key(rng, 999, i))
	}
	for level := range frozen {
		fa := frozen[level].ContainsAll(nil, probes)
		la := lives[level].ContainsAll(nil, probes)
		for i := range probes {
			if fa[i] != la[i] {
				log.Fatalf("DIVERGENCE: level %d probe %d frozen=%v live=%v", level, i, fa[i], la[i])
			}
		}
	}
	fmt.Printf("frozen ≡ live on %d probes × %d levels\n", len(probes), levels)

	// Invariant 3 — gating: an absent key should be rejected by almost
	// every level, so a negative lookup touches ~0 levels and a
	// positive one ~1. Measure levels touched per absent-key lookup.
	touched := 0
	for i := 0; i < probeMisses; i++ {
		miss := key(rng, 1000+i%7, i)
		for _, fz := range frozen {
			if fz.Contains(miss) {
				touched++
			}
		}
	}
	perLookup := float64(touched) / probeMisses
	fmt.Printf("absent-key lookups touch %.4f of %d levels on average\n", perLookup, levels)
	// With bitsPerKey=12, k=8 the per-level FPR is well under 1%; even
	// 10× slack keeps this far below one level per lookup.
	if perLookup > 0.5 {
		log.Fatalf("GATING BROKEN: %.4f levels touched per absent lookup (want < 0.5)", perLookup)
	}

	fmt.Println("ok: all invariants hold")
}

// key derives a 16-byte key unique to (level, i) plus rng noise so
// levels do not share keys.
func key(rng *rand.Rand, level, i int) []byte {
	b := make([]byte, 16)
	rng.Read(b)
	b[0], b[1] = byte(level), byte(level>>8)
	b[2], b[3] = byte(i), byte(i>>8)
	return b
}
