package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeneratorDistinctness(t *testing.T) {
	g := NewGenerator(1)
	seen := map[FlowID]bool{}
	for i := 0; i < 100000; i++ {
		id := g.Next()
		if seen[id] {
			t.Fatalf("duplicate flow ID at draw %d", i)
		}
		seen[id] = true
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, b := NewGenerator(7), NewGenerator(7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
	c := NewGenerator(8)
	if NewGenerator(7).Next() == c.Next() {
		t.Fatal("different seeds produced the same first ID")
	}
}

func TestDistinct(t *testing.T) {
	g := NewGenerator(2)
	ids := g.Distinct(5000)
	if len(ids) != 5000 {
		t.Fatalf("got %d ids", len(ids))
	}
	seen := map[FlowID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatal("Distinct returned a duplicate")
		}
		seen[id] = true
	}
	// Later draws are disjoint from earlier ones.
	for _, id := range g.Distinct(5000) {
		if seen[id] {
			t.Fatal("second batch overlaps first")
		}
	}
}

func TestFlowIDFields(t *testing.T) {
	var f FlowID
	copy(f[:], []byte{10, 0, 0, 1, 192, 168, 1, 2, 0x01, 0xBB, 0x1F, 0x90, 6})
	if f.SrcIP() != [4]byte{10, 0, 0, 1} {
		t.Errorf("SrcIP = %v", f.SrcIP())
	}
	if f.DstIP() != [4]byte{192, 168, 1, 2} {
		t.Errorf("DstIP = %v", f.DstIP())
	}
	if f.SrcPort() != 443 {
		t.Errorf("SrcPort = %d", f.SrcPort())
	}
	if f.DstPort() != 8080 {
		t.Errorf("DstPort = %d", f.DstPort())
	}
	if f.Proto() != 6 {
		t.Errorf("Proto = %d", f.Proto())
	}
	want := "10.0.0.1:443->192.168.1.2:8080/6"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestProtocolMix(t *testing.T) {
	g := NewGenerator(3)
	counts := map[byte]int{}
	for i := 0; i < 10000; i++ {
		counts[g.Next().Proto()]++
	}
	for _, p := range []byte{1, 6, 17} {
		if counts[p] == 0 {
			t.Errorf("protocol %d never generated", p)
		}
	}
	if counts[6] < counts[17] || counts[17] < counts[1] {
		t.Errorf("protocol mix not TCP-dominant: %v", counts)
	}
	if len(counts) != 3 {
		t.Errorf("unexpected protocols: %v", counts)
	}
}

func TestMultiset(t *testing.T) {
	g := NewGenerator(4)
	flows := g.Multiset(20000, 57, 2.0)
	if len(flows) != 20000 {
		t.Fatalf("got %d flows", len(flows))
	}
	ones, max := 0, 0
	seen := map[FlowID]bool{}
	for _, fl := range flows {
		if fl.Count < 1 || fl.Count > 57 {
			t.Fatalf("count %d out of [1,57]", fl.Count)
		}
		if fl.Count == 1 {
			ones++
		}
		if fl.Count > max {
			max = fl.Count
		}
		if seen[fl.ID] {
			t.Fatal("duplicate ID in multiset")
		}
		seen[fl.ID] = true
	}
	// Zipf skew: most flows are mice, but some elephants exist.
	if ones < len(flows)/2 {
		t.Errorf("only %d/%d singleton flows — not skewed", ones, len(flows))
	}
	if max < 10 {
		t.Errorf("max count %d — no heavy flows generated", max)
	}
}

func TestMultisetDegenerateSkew(t *testing.T) {
	g := NewGenerator(5)
	flows := g.Multiset(100, 10, 0.5) // s ≤ 1 must be clamped, not panic
	for _, fl := range flows {
		if fl.Count < 1 || fl.Count > 10 {
			t.Fatalf("count %d out of range", fl.Count)
		}
	}
}

func TestUniformMultiset(t *testing.T) {
	g := NewGenerator(6)
	flows := g.UniformMultiset(57000, 57)
	hist := make([]int, 58)
	for _, fl := range flows {
		if fl.Count < 1 || fl.Count > 57 {
			t.Fatalf("count %d out of [1,57]", fl.Count)
		}
		hist[fl.Count]++
	}
	// Roughly 1000 per bucket.
	for j := 1; j <= 57; j++ {
		if hist[j] < 700 || hist[j] > 1300 {
			t.Fatalf("count %d has %d flows, want ≈1000", j, hist[j])
		}
	}
}

func TestBytes(t *testing.T) {
	g := NewGenerator(7)
	ids := g.Distinct(10)
	bs := Bytes(ids)
	if len(bs) != 10 {
		t.Fatalf("got %d slices", len(bs))
	}
	for i, b := range bs {
		if len(b) != FlowIDLen {
			t.Fatalf("slice %d has length %d", i, len(b))
		}
		if !bytes.Equal(b, ids[i][:]) {
			t.Fatalf("slice %d content mismatch", i)
		}
	}
	// Mutating the byte slice must not affect the original ID.
	bs[0][0] ^= 0xFF
	if bytes.Equal(bs[0], ids[0][:]) {
		t.Fatal("Bytes aliases the input array")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	g := NewGenerator(8)
	flows := g.Multiset(1234, 57, 1.3)
	var buf bytes.Buffer
	if err := Write(&buf, flows); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(flows) {
		t.Fatalf("read %d flows, wrote %d", len(got), len(flows))
	}
	for i := range flows {
		if got[i] != flows[i] {
			t.Fatalf("flow %d mismatch: %+v vs %+v", i, got[i], flows[i])
		}
	}
}

func TestSerializationRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)
		flows := NewGenerator(seed).UniformMultiset(n, 20)
		var buf bytes.Buffer
		if err := Write(&buf, flows); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range flows {
			if got[i] != flows[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a trace file")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(strings.NewReader("SH")); err == nil {
		t.Fatal("truncated magic accepted")
	}
	// Valid magic, truncated body.
	if _, err := Read(strings.NewReader("SHBF\x05\x00\x00\x00abc")); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g := NewGenerator(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
