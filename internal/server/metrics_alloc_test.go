//go:build !race

// (The race detector adds shadow-state allocations, so allocs/op is
// meaningless under -race; the race CI row still runs everything else
// in this package.)

package server

import (
	"fmt"
	"testing"

	"shbf/internal/wire"
)

// Zero-allocation guards for the instrumented ShBP dispatch path: the
// metrics layer must cost the hot loop only atomic adds — recording a
// frame is two array loads (op-indexed instrument tables) plus a
// histogram Observe, none of which may allocate. The first AllocsPerRun
// invocation is discarded, which is when the dispatch scratch and the
// filter plan pools reach steady size.

func requireZeroAllocs(t *testing.T, name string, runs int, fn func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(runs, fn); avg != 0 {
		t.Errorf("%s: %.2f allocs/op, want 0", name, avg)
	}
}

func TestInstrumentedDispatchAllocFree(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInflightFrames = 64 // include the frame-gate branch in the measured path
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.met == nil {
		t.Fatal("metrics unexpectedly disabled")
	}

	keys := make([][]byte, 256)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("alloc-flow-%08d", i))
	}
	var resp wire.Response
	var sc dispatchScratch

	addReq := wire.Request{Op: wire.OpMembershipAdd, Keys: keys}
	containsReq := wire.Request{Op: wire.OpMembershipContains, Keys: keys}
	countReq := wire.Request{Op: wire.OpMultiplicityCount, Keys: keys}
	pingReq := wire.Request{Op: wire.OpPing}

	// Warm the pools and scratch outside the measurement.
	s.handleFrame(&addReq, &resp, &sc)
	if resp.Status != wire.StatusOK {
		t.Fatalf("warm-up add: status %d (%s)", resp.Status, resp.Msg)
	}
	s.handleFrame(&containsReq, &resp, &sc)
	s.handleFrame(&countReq, &resp, &sc)

	requireZeroAllocs(t, "handleFrame/membership-add", 100, func() {
		s.handleFrame(&addReq, &resp, &sc)
	})
	requireZeroAllocs(t, "handleFrame/membership-contains", 100, func() {
		s.handleFrame(&containsReq, &resp, &sc)
	})
	requireZeroAllocs(t, "handleFrame/multiplicity-count", 100, func() {
		s.handleFrame(&countReq, &resp, &sc)
	})
	requireZeroAllocs(t, "handleFrame/ping", 100, func() {
		s.handleFrame(&pingReq, &resp, &sc)
	})
	if resp.Status != wire.StatusOK {
		t.Fatalf("status %d after measurement (%s)", resp.Status, resp.Msg)
	}
}
