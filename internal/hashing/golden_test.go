package hashing

import "testing"

// TestGoldenVectors pins the hash function's outputs. The serialized
// filter format stores only seeds and bit arrays; decoding assumes the
// hash family reproduces the exact same positions, so ANY change to the
// mixing function silently corrupts previously serialized filters.
// If this test fails, either revert the hash change or bump the
// serialization format version in internal/core/marshal.go.
func TestGoldenVectors(t *testing.T) {
	vectors := []struct {
		seed   uint64
		input  string
		lo, hi uint64
	}{
		{0, "", 0xf06474b1cb62cfa9, 0x77fd1baa441041b7},
		{0, "a", 0xb93d2b6462988f4d, 0xbbbdeacf0a486d93},
		{0, "flow-id-13by", 0xd900c50b29ef3e23, 0xe481583a87735ed7},
		{0, "0123456789abcdef", 0x0f22b016a46595ec, 0xfe0dc20b33c1ffd9},
		{0, "0123456789abcdef0123456789abcdef!", 0x9468f3c28292495e, 0x76a6eaba7fd7738b},
		{1, "", 0x9ded53892aa7088b, 0xeb2cfbff692ada26},
		{1, "a", 0xac51ad28cc1873cc, 0xfa67ef7408005b1b},
		{1, "flow-id-13by", 0x142b3cd80fdff3d0, 0x5c33af1886f9599d},
		{1, "0123456789abcdef", 0xcb9e01ab565b2146, 0x3db5a9359df936fc},
		{1, "0123456789abcdef0123456789abcdef!", 0xf281f3392151d003, 0xb4a60f40cf3bbbb3},
		{0xdeadbeef, "", 0xca19829c8a4269ab, 0xdff55223eb4d1aa1},
		{0xdeadbeef, "a", 0x4e6d01adc0d07a4e, 0x4eeb1c47c964e625},
		{0xdeadbeef, "flow-id-13by", 0x209e53894173d432, 0xac77df54dfe61f03},
		{0xdeadbeef, "0123456789abcdef", 0x185a359e44e55519, 0x9dfd9890013d223c},
		{0xdeadbeef, "0123456789abcdef0123456789abcdef!", 0x3198f17c14cd5512, 0x73e0a1dc362bf002},
	}
	for _, v := range vectors {
		lo, hi := New(v.seed).Sum128([]byte(v.input))
		if lo != v.lo || hi != v.hi {
			t.Errorf("Sum128(seed=%#x, %q) = (%#x, %#x), golden (%#x, %#x) — hash changed; see comment",
				v.seed, v.input, lo, hi, v.lo, v.hi)
		}
	}
}

// TestGoldenFamilyDerivation pins the digest pipeline — KeyDigest
// under the tree-wide DigestSeed, and the family's digest → mix
// derivation — for the same reason. These vectors were regenerated in
// PR 3 when the one-pass pipeline replaced per-function hashing:
// cross-version bit-pattern determinism reset at that version (old
// envelopes still load — they store bits, not keys — but answer
// queries under the new positions).
func TestGoldenFamilyDerivation(t *testing.T) {
	d := KeyDigest([]byte("x"))
	const wantLo, wantHi = uint64(0x233eaf3a4b8fe206), uint64(0xec5b9c7430024538)
	if d.Lo != wantLo || d.Hi != wantHi {
		t.Errorf("KeyDigest(\"x\") = (%#x, %#x), golden (%#x, %#x)", d.Lo, d.Hi, wantLo, wantHi)
	}
	fam := NewFamily(3, 42)
	got := fam.Sum64(2, []byte("x"))
	const want = uint64(0x6c2d38dfe361df4c)
	if got != want {
		t.Errorf("family member 2 hash = %#x, golden %#x", got, want)
	}
}
