// Command shbfd is the ShBF query-serving daemon: one process serving
// membership (ShBF_M), association (CShBF_A), and multiplicity
// (CShBF_X) set queries for many tenant namespaces, backed by the
// lock-striped shards of internal/sharded, over two transports: the
// namespace-scoped /v2 HTTP/JSON API (plus the /v1 shims over the
// "default" namespace) and ShBP, a length-prefixed binary batch
// protocol on its own listener for small-batch-heavy serving where
// JSON decode would dominate (see internal/wire and shbf/client).
//
// Usage:
//
//	shbfd [-addr :8137] [-shbp-addr :8138] [-udp-addr ""] [-shards 16] [-seed 1]
//	      [-member-bits N] [-member-k 8]
//	      [-assoc-bits N]  [-assoc-k 8]
//	      [-mult-bits N]   [-mult-k 8] [-c 57]
//	      [-window 0] [-tick 0]
//	      [-snapshot state.shbf] [-snapshot-every 0]
//	      [-pprof-addr localhost:6060]
//	      [-cluster-file cluster.json -node-id n1]
//	      [-max-total-bits 0] [-shbp-max-inflight 0]
//	      [-shbp-idle-timeout 2m]
//	      [-http-read-header-timeout 10s] [-http-idle-timeout 2m]
//	      [-version]
//
// The flags size the default namespace; further namespaces — each with
// its own geometry and window policy — are created at runtime via
// POST /v2/namespaces (or the equivalent ShBP op) and persist through
// snapshots.
//
// With -udp-addr, the daemon also listens for ShBU — the
// fire-and-forget UDP ingest protocol spoken by shbfagent edge agents
// (see internal/ingest and OPERATIONS.md §14). Datagrams carry packed
// key batches or fragments of pre-aggregated filter envelopes, and
// apply through the same per-namespace write gates as the TCP
// transports; since UDP has no reply, refusals, loss, reordering and
// duplication surface in the shbf_udp_* metric families.
//
// With -window G (G ≥ 2), the default namespace's filters run as a
// sliding window of G generations: writes go to the head generation,
// and each rotation — driven every -tick interval, or on demand via
// POST /v1/rotate — retires the oldest, so the daemon answers "seen in
// the last G−1..G ticks" and its memory and false-positive rate stay
// bounded on endless streams (the streaming deployments the paper
// targets). Memory in window mode is G × the configured per-filter
// bits. The -tick loop rotates every windowed namespace.
//
// With -snapshot, state is reloaded from the file at startup (if it
// exists), persisted on POST /v1/snapshot, every -snapshot-every
// interval if set, and on graceful shutdown (SIGINT/SIGTERM) — so
// answers survive restarts; window rings restore with their head
// positions and rotation epochs. With -pprof-addr, the net/http/pprof
// endpoints are served on a second, separate listener (keep it on
// localhost or behind a firewall: profiles expose internals), so the
// daemon's hot paths can be profiled in place:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//
// The fault-tolerance knobs (OPERATIONS.md §"Fault tolerance"): -max-
// total-bits caps the daemon's aggregate filter memory (creations past
// it shed with 429/StatusOverloaded), -shbp-max-inflight caps
// concurrently-dispatching ShBP frames (writes shed at ¾ of the cap,
// so reads survive a write flood), -shbp-idle-timeout reaps silent
// binary connections, and the -http-* timeouts bound header reads and
// keep-alive idleness so slow or stalled HTTP clients can't pin
// connections open (slowloris).
//
// With -cluster-file and -node-id, the daemon joins a static cluster:
// it validates the map, checks its own id is in it, and serves the map
// over GET /v2/cluster and the ShBP cluster-map op so any node is a
// seed address for client.Cluster, which routes batches by digest
// range. See internal/cluster and OPERATIONS.md §"Cluster mode".
//
// Observability: GET /metrics on the HTTP listener (and the ShBP
// metrics op — same bytes) serves Prometheus text metrics — per-op
// request counters and latency histograms on both transports,
// per-namespace occupancy/FPR/rotation gauges, admission-control shed
// counters, and build/start info. -version prints the daemon version
// and exits. See OPERATIONS.md §13 for the metric reference.
//
// See internal/server for the endpoint list, OPERATIONS.md for running
// the daemon in production, and DESIGN.md for the architecture.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"shbf"
	"shbf/internal/cluster"
	"shbf/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "shbfd:", err)
		os.Exit(1)
	}
}

// run parses args, builds the server, and serves until ctx is
// cancelled. When ready is non-nil, the bound address is sent on it
// once the listener is up (used by tests binding port 0).
func run(ctx context.Context, args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("shbfd", flag.ContinueOnError)
	var (
		version   = fs.Bool("version", false, "print the daemon version and exit")
		addr      = fs.String("addr", ":8137", "HTTP listen address")
		shbpAddr  = fs.String("shbp-addr", ":8138", "ShBP binary-protocol listen address (empty = disabled)")
		udpAddr   = fs.String("udp-addr", "", "ShBU UDP ingest listen address (empty = disabled)")
		shards    = fs.Int("shards", 16, "shards per filter (rounded up to a power of two)")
		seed      = fs.Uint64("seed", 1, "hash seed (filters are deterministic per seed)")
		memBits   = fs.Int("member-bits", 12<<20, "total membership filter bits")
		memK      = fs.Int("member-k", 8, "membership bit positions per element (even)")
		assBits   = fs.Int("assoc-bits", 12<<20, "total association filter bits")
		assK      = fs.Int("assoc-k", 8, "association bit positions per element")
		mulBits   = fs.Int("mult-bits", 18<<20, "total multiplicity filter bits")
		mulK      = fs.Int("mult-k", 8, "multiplicity bit positions per element")
		maxCount  = fs.Int("c", 57, "maximum multiplicity")
		windowGen = fs.Int("window", 0, "sliding-window generations per filter (0 = unbounded filters; ≥ 2 enables rotation)")
		tick      = fs.Duration("tick", 0, "rotate the windows on this interval (0 = only via POST /v1/rotate; requires -window)")
		snapPath  = fs.String("snapshot", "", "snapshot file (loaded at startup, written on shutdown and POST /v1/snapshot)")
		snapEvr   = fs.Duration("snapshot-every", 0, "also snapshot on this interval (0 = disabled; requires -snapshot)")
		pprofAddr = fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled; keep it private)")
		clusterF  = fs.String("cluster-file", "", "cluster map JSON file (enables cluster mode; requires -node-id)")
		nodeID    = fs.String("node-id", "", "this daemon's node id in the cluster map (requires -cluster-file)")
		maxBits   = fs.Int64("max-total-bits", 0, "daemon-wide filter-memory ceiling in bits across all namespaces (0 = unlimited; creations past it shed with 429)")
		maxFrames = fs.Int("shbp-max-inflight", 0, "max concurrently-dispatching ShBP frames; writes shed at ¾ of the cap (0 = unlimited)")
		shbpIdle  = fs.Duration("shbp-idle-timeout", 2*time.Minute, "close ShBP connections idle this long (0 = never)")
		httpRHT   = fs.Duration("http-read-header-timeout", 10*time.Second, "time allowed to read an HTTP request's headers (slowloris guard; 0 = unlimited)")
		httpIdle  = fs.Duration("http-idle-timeout", 2*time.Minute, "close keep-alive HTTP connections idle this long (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Printf("shbfd %s %s %s/%s\n", shbf.Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return nil
	}
	if *snapEvr > 0 && *snapPath == "" {
		return errors.New("-snapshot-every requires -snapshot")
	}
	if *tick > 0 && *windowGen < 2 {
		return errors.New("-tick requires -window ≥ 2")
	}
	if (*clusterF == "") != (*nodeID == "") {
		return errors.New("-cluster-file and -node-id must be set together")
	}

	cfg := server.Config{
		MembershipBits:    *memBits,
		MembershipK:       *memK,
		AssociationBits:   *assBits,
		AssociationK:      *assK,
		MultiplicityBits:  *mulBits,
		MultiplicityK:     *mulK,
		MaxCount:          *maxCount,
		Shards:            *shards,
		Seed:              *seed,
		SnapshotPath:      *snapPath,
		WindowGenerations: *windowGen,
		WindowTick:        *tick,
		MaxTotalBits:      *maxBits,
		MaxInflightFrames: *maxFrames,
		ShBPIdleTimeout:   *shbpIdle,
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}

	// Cluster mode: load the static map and make this daemon one of its
	// nodes. The daemon only has to *serve* the map (any node is a seed
	// address for client.Cluster); batch routing happens client-side.
	if *clusterF != "" {
		m, err := cluster.LoadFile(*clusterF)
		if err != nil {
			return err
		}
		if err := srv.SetClusterMap(m, *nodeID); err != nil {
			return err
		}
		log.Printf("shbfd: cluster mode: node %q in a %d-node map (version %d, replication %d)",
			*nodeID, len(m.Nodes), m.Version, m.Replication)
	}

	// The profiling listener is separate from the serving listener so
	// the pprof endpoints are never reachable through the query port —
	// operators expose -addr and keep -pprof-addr on localhost. A
	// dedicated mux (rather than http.DefaultServeMux, which the pprof
	// package registers on as a side effect) keeps the surface explicit.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		log.Printf("shbfd: pprof on http://%s/debug/pprof/", pln.Addr())
		go func() {
			if err := psrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("shbfd: pprof server: %v", err)
			}
		}()
		defer psrv.Close()
	}

	// The ShBP binary listener serves the same namespaces as HTTP on a
	// dedicated port: length-prefixed batch frames that feed the batch
	// library paths without JSON decode (see internal/wire).
	if *shbpAddr != "" {
		shbpLn, err := net.Listen("tcp", *shbpAddr)
		if err != nil {
			return fmt.Errorf("shbp listener: %w", err)
		}
		log.Printf("shbfd: shbp (binary protocol) on %s", shbpLn.Addr())
		go func() {
			if err := srv.ServeShBP(ctx, shbpLn); err != nil {
				log.Printf("shbfd: shbp server: %v", err)
			}
		}()
	}

	// The UDP ingest listener accepts fire-and-forget ShBU datagrams
	// from shbfagent edge agents (see internal/ingest): packed key
	// batches and pre-aggregated filter envelopes, applied through the
	// same write gates as the TCP transports. UDP has no reply, so
	// refusals and transport loss surface only in the shbf_udp_*
	// metric families.
	if *udpAddr != "" {
		pc, err := net.ListenPacket("udp", *udpAddr)
		if err != nil {
			return fmt.Errorf("udp listener: %w", err)
		}
		log.Printf("shbfd: shbu (udp ingest) on %s", pc.LocalAddr())
		go func() {
			if err := srv.ServeShBU(pc); err != nil {
				log.Printf("shbfd: udp server: %v", err)
			}
		}()
		defer pc.Close()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("shbfd: serving on %s (%d shards/filter)", ln.Addr(), *shards)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: *httpRHT,
		IdleTimeout:       *httpIdle,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	var snapTicker *time.Ticker
	var snapC <-chan time.Time
	if *snapEvr > 0 {
		snapTicker = time.NewTicker(*snapEvr)
		snapC = snapTicker.C
		defer snapTicker.Stop()
	}
	var rotTicker *time.Ticker
	var rotC <-chan time.Time
	if *tick > 0 {
		rotTicker = time.NewTicker(*tick)
		rotC = rotTicker.C
		defer rotTicker.Stop()
		log.Printf("shbfd: window mode: %d generations, rotating every %s (window ≈ %s)",
			*windowGen, *tick, time.Duration(*windowGen)**tick)
	} else if *windowGen >= 2 {
		log.Printf("shbfd: window mode: %d generations, rotation via POST /v1/rotate", *windowGen)
	}
	for {
		select {
		case <-snapC:
			if n, err := srv.SaveSnapshot(*snapPath); err != nil {
				log.Printf("shbfd: periodic snapshot: %v", err)
			} else {
				log.Printf("shbfd: snapshot written (%d bytes)", n)
			}
		case <-rotC:
			// Rotate every windowed namespace; tenants created without
			// windows are skipped.
			if rotated, err := srv.RotateAll(); errors.Is(err, server.ErrNotWindowed) {
				// A classic (pre-window) snapshot overrode -window at
				// restore; ticking forever would just log this error
				// every -tick. Say it once and stop the ticker.
				log.Printf("shbfd: rotation disabled: %v", err)
				rotTicker.Stop()
				rotC = nil
			} else if err != nil {
				log.Printf("shbfd: rotation: %v", err)
			} else {
				log.Printf("shbfd: rotated namespaces %v", rotated)
			}
		case err := <-errc:
			return err
		case <-ctx.Done():
			shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := httpSrv.Shutdown(shutCtx); err != nil {
				log.Printf("shbfd: shutdown: %v", err)
			}
			if *snapPath != "" {
				if n, err := srv.SaveSnapshot(*snapPath); err != nil {
					return fmt.Errorf("final snapshot: %w", err)
				} else {
					log.Printf("shbfd: final snapshot written (%d bytes)", n)
				}
			}
			return nil
		}
	}
}
