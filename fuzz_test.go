package shbf_test

import (
	"testing"

	"shbf"
)

// FuzzEnvelopeDecode feeds arbitrary bytes to the self-describing
// envelope decoder: no panics on garbage, and anything accepted must
// survive a Dump/Decode round trip with identical kind and spec. The
// corpus is seeded with a real envelope of every Kind.
func FuzzEnvelopeDecode(f *testing.F) {
	seedSpecs := []shbf.Spec{
		{Kind: shbf.KindMembership, M: 512, K: 4},
		{Kind: shbf.KindCountingMembership, M: 512, K: 4},
		{Kind: shbf.KindTShift, M: 512, K: 6, T: 2},
		{Kind: shbf.KindAssociation, M: 512, K: 3},
		{Kind: shbf.KindCountingAssociation, M: 512, K: 3},
		{Kind: shbf.KindMultiAssociation, M: 512, K: 3, G: 2},
		{Kind: shbf.KindMultiplicity, M: 512, K: 3, C: 9},
		{Kind: shbf.KindCountingMultiplicity, M: 512, K: 3, C: 9},
		{Kind: shbf.KindSCMSketch, M: 64, K: 4},
		{Kind: shbf.KindShardedMembership, M: 1024, K: 4, Shards: 2},
		{Kind: shbf.KindShardedAssociation, M: 1024, K: 3, Shards: 2},
		{Kind: shbf.KindShardedMultiplicity, M: 1024, K: 3, C: 9, Shards: 2},
	}
	for _, spec := range seedSpecs {
		filt, err := shbf.New(spec)
		if err != nil {
			f.Fatalf("seeding %s: %v", spec.Kind, err)
		}
		if a, ok := filt.(shbf.Adder); ok {
			if err := a.AddAll([][]byte{[]byte("seed-1"), []byte("seed-2")}); err != nil {
				f.Fatal(err)
			}
		}
		blob, err := shbf.AppendDump(nil, filt)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte("ShBE\x01\x01\x00"))
	f.Add([]byte("ShBE\x01\xff\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		filt, _, err := shbf.Decode(data)
		if err != nil {
			return
		}
		re, err := shbf.AppendDump(nil, filt)
		if err != nil {
			t.Fatalf("re-dump of accepted filter failed: %v", err)
		}
		again, rest, err := shbf.Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes after re-decode", len(rest))
		}
		if again.Kind() != filt.Kind() {
			t.Fatalf("round trip changed kind: %s vs %s", again.Kind(), filt.Kind())
		}
		if again.Spec() != filt.Spec() {
			t.Fatalf("round trip changed spec: %+v vs %+v", again.Spec(), filt.Spec())
		}
	})
}
