// Flow-size measurement: the multiplicity-query application of the
// paper's Section 5 (network measurement of per-flow packet counts).
//
// A packet stream with Zipf-skewed flow sizes is fed one packet at a
// time into an updatable CShBF_X. Queries then read per-flow counts
// from the compact on-chip bit array; the backing structures guarantee
// no flow is ever under-counted, and heavy hitters are detected
// exactly.
//
// Run with: go run ./examples/flowcount
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"shbf"
)

const (
	nFlows   = 30000
	maxCount = 57 // the paper's c
	k        = 8
)

func main() {
	// Memory 1.5× the optimal BF size, the paper's Figure 11 setup.
	nf := float64(nFlows)
	m := int(1.5 * nf * k / math.Ln2)
	counter, err := shbf.NewCountingMultiplicity(m, k, maxCount,
		shbf.WithSeed(9), shbf.WithCounterWidth(8))
	if err != nil {
		log.Fatal(err)
	}

	// Zipf-skewed packet counts: most flows are mice, a few elephants.
	rng := rand.New(rand.NewSource(3))
	zipf := rand.NewZipf(rng, 1.4, 1, maxCount-1)
	flows := make([][]byte, nFlows)
	truth := make([]int, nFlows)
	packets := 0
	for i := range flows {
		flows[i] = flowID(rng, uint32(i))
		truth[i] = int(zipf.Uint64()) + 1
		packets += truth[i]
	}

	// Stream the packets in interleaved order (as a router would see
	// them), one Insert per packet.
	order := make([]int, 0, packets)
	for i, t := range truth {
		for j := 0; j < t; j++ {
			order = append(order, i)
		}
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for _, i := range order {
		if err := counter.Insert(flows[i]); err != nil {
			log.Fatalf("insert: %v", err)
		}
	}
	fmt.Printf("ingested %d packets over %d flows into %d KiB of query-side bits\n\n",
		packets, nFlows, m/8/1024)

	// Query every flow from the bit array.
	exact, over := 0, 0
	for i, f := range flows {
		got := counter.Count(f)
		switch {
		case got == truth[i]:
			exact++
		case got > truth[i]:
			over++
		default:
			log.Fatalf("flow %d under-counted: %d < %d", i, got, truth[i])
		}
	}
	fmt.Printf("per-flow counts: %d exact (%.2f%%), %d overestimated, 0 underestimated\n",
		exact, 100*float64(exact)/nFlows, over)

	// Heavy-hitter detection: the top flows by reported count must
	// contain every true elephant.
	type flowCount struct {
		idx, reported int
	}
	reported := make([]flowCount, nFlows)
	for i, f := range flows {
		reported[i] = flowCount{i, counter.Count(f)}
	}
	sort.Slice(reported, func(a, b int) bool { return reported[a].reported > reported[b].reported })

	const threshold = 40
	missed := 0
	topSet := map[int]bool{}
	for _, fc := range reported {
		if fc.reported >= threshold {
			topSet[fc.idx] = true
		}
	}
	heavy := 0
	for i, t := range truth {
		if t >= threshold {
			heavy++
			if !topSet[i] {
				missed++
			}
		}
	}
	fmt.Printf("heavy hitters (≥%d pkts): %d true, %d missed (no-false-negative guarantee)\n",
		threshold, heavy, missed)
	if missed != 0 {
		log.Fatal("missed a heavy hitter — impossible for ShBF_X")
	}
}

func flowID(rng *rand.Rand, seq uint32) []byte {
	id := make([]byte, 13)
	rng.Read(id)
	id[4], id[5], id[6], id[7] = byte(seq), byte(seq>>8), byte(seq>>16), byte(seq>>24)
	return id
}
