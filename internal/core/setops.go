package core

import (
	"fmt"
	"math"
)

// Set-algebra and estimation operations on ShBF_M. These are the
// standard Bloom-filter conveniences, and they carry over to the
// shifting construction because an element's k bit positions depend
// only on (element, seed, m, k, w̄): two filters with identical
// geometry and seed place every element identically, so OR-ing the
// arrays is exactly the filter of the union.

// compatible reports whether two filters share geometry and hash
// family.
func (f *Membership) compatible(o *Membership) bool {
	return f.m == o.m && f.k == o.k && f.wbar == o.wbar && f.seed == o.seed
}

// Union ORs other into f, making f represent the union of both sets.
// The filters must have identical geometry (m, k, w̄) and seed;
// otherwise an error is returned and f is unchanged. N becomes the sum
// of both counts (an upper bound on the union's distinct cardinality —
// use EstimateN for a fill-based estimate).
func (f *Membership) Union(other *Membership) error {
	if !f.compatible(other) {
		return fmt.Errorf("core: incompatible filters (m=%d/%d k=%d/%d w̄=%d/%d seed match=%v)",
			f.m, other.m, f.k, other.k, f.wbar, other.wbar, f.seed == other.seed)
	}
	f.bits.Or(other.bits)
	f.n += other.n
	return nil
}

// Intersect ANDs other into f. The result is a superset filter of the
// true intersection: it may contain extra bits from colliding elements,
// so Contains answers have a (slightly) higher false-positive rate than
// a filter built from the intersection directly — the standard
// Bloom-filter caveat. N is reset to an EstimateN-based value.
func (f *Membership) Intersect(other *Membership) error {
	if !f.compatible(other) {
		return fmt.Errorf("core: incompatible filters")
	}
	f.bits.And(other.bits)
	est := f.EstimateN()
	f.n = est
	return nil
}

// EstimateN estimates the number of distinct elements from the fill
// ratio, inverting Equation 3: with x the fraction of set bits,
// n̂ = −(m′/k)·ln(1−x), where m′ counts the whole array including
// slack. Accurate to a few percent away from saturation.
func (f *Membership) EstimateN() int {
	x := f.bits.FillRatio()
	if x >= 1 {
		return math.MaxInt32
	}
	mPrime := float64(f.bits.Len())
	return int(math.Round(-mPrime / float64(f.k) * math.Log(1-x)))
}
