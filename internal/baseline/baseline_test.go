package baseline

import (
	"math"
	"math/rand"
	"testing"

	"shbf/internal/memmodel"
)

// genElements returns n distinct 13-byte pseudo flow IDs.
func genElements(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		b := make([]byte, 13)
		rng.Read(b)
		b[0], b[1], b[2], b[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		out[i] = b
	}
	return out
}

func genDisjoint(n int, seed int64) [][]byte {
	out := genElements(n, seed)
	for _, e := range out {
		e[12] = 0xFF
	}
	return out
}

func TestBFValidation(t *testing.T) {
	if _, err := NewBF(0, 4); err == nil {
		t.Error("accepted m=0")
	}
	if _, err := NewBF(100, 0); err == nil {
		t.Error("accepted k=0")
	}
}

func TestBFNoFalseNegatives(t *testing.T) {
	f, err := NewBF(10000, 8)
	if err != nil {
		t.Fatal(err)
	}
	elems := genElements(800, 1)
	for _, e := range elems {
		f.Add(e)
	}
	for _, e := range elems {
		if !f.Contains(e) {
			t.Fatal("false negative")
		}
	}
	if f.N() != 800 {
		t.Fatalf("N = %d", f.N())
	}
}

func TestBFFPRMatchesTheory(t *testing.T) {
	// Equation (8): f_BF ≈ (1−e^{−nk/m})^k.
	const m, k, n, probes = 22008, 8, 1500, 400000
	f, err := NewBF(m, k, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range genElements(n, 2) {
		f.Add(e)
	}
	fp := 0
	for _, e := range genDisjoint(probes, 3) {
		if f.Contains(e) {
			fp++
		}
	}
	got := float64(fp) / probes
	want := math.Pow(1-math.Exp(-float64(n)*k/float64(m)), k)
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("measured FPR %.5f vs theory %.5f", got, want)
	}
}

func TestBFAccessCounting(t *testing.T) {
	// BF pays one access per probed bit: k for members (Section 1.2.1),
	// versus ShBF_M's k/2 — the claim behind Figure 8.
	var acc memmodel.Counter
	const k = 8
	f, err := NewBF(10000, k, WithAccessCounter(&acc))
	if err != nil {
		t.Fatal(err)
	}
	e := []byte("member")
	f.Add(e)
	acc.Reset()
	if !f.Contains(e) {
		t.Fatal("member missing")
	}
	if got := acc.Reads(); got != k {
		t.Fatalf("member query cost %d accesses, want %d", got, k)
	}
	f.Reset()
	acc.Reset()
	f.Contains(e)
	if got := acc.Reads(); got != 1 {
		t.Fatalf("empty-filter miss cost %d accesses, want 1", got)
	}
}

func TestCBFInsertDelete(t *testing.T) {
	f, err := NewCBF(10000, 6, WithCounterWidth(8))
	if err != nil {
		t.Fatal(err)
	}
	elems := genElements(400, 4)
	for _, e := range elems {
		if err := f.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range elems {
		if !f.Contains(e) {
			t.Fatal("false negative")
		}
	}
	for _, e := range elems {
		if err := f.Delete(e); err != nil {
			t.Fatal(err)
		}
	}
	// After full teardown the filter must be empty: no original element
	// may still appear present.
	for _, e := range elems {
		if f.Contains(e) {
			t.Fatal("element survives delete")
		}
	}
	if err := f.Delete(elems[0]); err != ErrNotStored {
		t.Fatalf("over-delete = %v, want ErrNotStored", err)
	}
}

func TestCBFSaturationRollback(t *testing.T) {
	f, err := NewCBF(1000, 4, WithCounterWidth(1))
	if err != nil {
		t.Fatal(err)
	}
	e := []byte("x")
	if err := f.Insert(e); err != nil {
		t.Fatal(err)
	}
	if err := f.Insert(e); err != ErrSaturated {
		t.Fatalf("second insert = %v, want ErrSaturated", err)
	}
	if !f.Contains(e) {
		t.Fatal("rollback corrupted filter")
	}
}

func TestOneMemBFOneAccess(t *testing.T) {
	var acc memmodel.Counter
	f, err := NewOneMemBF(22008, 8, WithAccessCounter(&acc))
	if err != nil {
		t.Fatal(err)
	}
	e := []byte("elem")
	f.Add(e)
	if acc.Writes() != 1 {
		t.Fatalf("Add cost %d writes, want 1", acc.Writes())
	}
	acc.Reset()
	if !f.Contains(e) {
		t.Fatal("false negative")
	}
	if acc.Reads() != 1 {
		t.Fatalf("query cost %d reads, want exactly 1", acc.Reads())
	}
	if got := f.HashOpsPerQuery(); got != 9 {
		t.Fatalf("HashOpsPerQuery = %d, want k+1 = 9", got)
	}
}

func TestOneMemBFNoFalseNegatives(t *testing.T) {
	f, err := NewOneMemBF(30000, 8)
	if err != nil {
		t.Fatal(err)
	}
	elems := genElements(1000, 5)
	for _, e := range elems {
		f.Add(e)
	}
	for _, e := range elems {
		if !f.Contains(e) {
			t.Fatal("false negative")
		}
	}
}

func TestOneMemBFHigherFPRThanBF(t *testing.T) {
	// The paper's Figure 7: with equal memory, 1MemBF's FPR is a
	// multiple of ShBF_M's/BF's because of in-word imbalance.
	const m, k, n, probes = 22008, 8, 1500, 200000
	bf, err := NewBF(m, k, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	om, err := NewOneMemBF(m, k, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range genElements(n, 6) {
		bf.Add(e)
		om.Add(e)
	}
	bfFP, omFP := 0, 0
	for _, e := range genDisjoint(probes, 7) {
		if bf.Contains(e) {
			bfFP++
		}
		if om.Contains(e) {
			omFP++
		}
	}
	if omFP <= bfFP {
		t.Fatalf("1MemBF FPs (%d) not above BF FPs (%d) — imbalance effect missing", omFP, bfFP)
	}
}

func TestKMBF(t *testing.T) {
	f, err := NewKMBF(20000, 8)
	if err != nil {
		t.Fatal(err)
	}
	elems := genElements(1000, 8)
	for _, e := range elems {
		f.Add(e)
	}
	for _, e := range elems {
		if !f.Contains(e) {
			t.Fatal("false negative")
		}
	}
	if got := f.HashOpsPerQuery(); got != 1 {
		t.Fatalf("HashOpsPerQuery = %d, want 1", got)
	}
	// FPR sanity: within a small factor of the BF formula ("less
	// hashing, same performance" — asymptotically equal, slightly worse
	// at finite sizes).
	fp, probes := 0, 100000
	for _, e := range genDisjoint(probes, 9) {
		if f.Contains(e) {
			fp++
		}
	}
	got := float64(fp) / float64(probes)
	want := math.Pow(1-math.Exp(-1000.0*8/20000), 8)
	if got > want*2.5 {
		t.Fatalf("KM FPR %.5f more than 2.5× BF theory %.5f", got, want)
	}
	f.Reset()
	if f.N() != 0 || f.FillRatio() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestKMBFValidation(t *testing.T) {
	if _, err := NewKMBF(0, 4); err == nil {
		t.Error("accepted m=0")
	}
	if _, err := NewKMBF(10, 0); err == nil {
		t.Error("accepted k=0")
	}
}
