// Command tracegen generates and inspects the synthetic 5-tuple flow
// traces the reproduction uses in place of the paper's backbone capture
// (see DESIGN.md §5).
//
// Usage:
//
//	tracegen -o trace.bin -n 100000 -max-count 57 -zipf 1.2 [-seed 1]
//	tracegen -info trace.bin
//	tracegen -from-csv flows.csv -o trace.bin     # import a real capture
//	tracegen -to-csv flows.csv -info trace.bin    # export for inspection
package main

import (
	"flag"
	"fmt"
	"os"

	"shbf/internal/trace"
)

func main() {
	var (
		out      = flag.String("o", "", "output trace file")
		info     = flag.String("info", "", "print statistics of an existing trace file")
		n        = flag.Int("n", 100000, "number of distinct flows")
		maxCount = flag.Int("max-count", 57, "maximum flow multiplicity c")
		zipf     = flag.Float64("zipf", 1.2, "Zipf skew (≤1 for uniform counts)")
		uniform  = flag.Bool("uniform", false, "uniform counts in [1,max-count] instead of Zipf")
		seed     = flag.Int64("seed", 1, "generator seed")
		fromCSV  = flag.String("from-csv", "", "import flows from a CSV file instead of generating")
		toCSV    = flag.String("to-csv", "", "with -info: also export the trace as CSV to this path")
	)
	flag.Parse()

	if *fromCSV != "" {
		if err := importCSV(*fromCSV, *out); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}
	if *toCSV != "" {
		if err := exportCSV(*info, *toCSV); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*out, *info, *n, *maxCount, *zipf, *uniform, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(out, info string, n, maxCount int, zipf float64, uniform bool, seed int64) error {
	switch {
	case info != "":
		return printInfo(info)
	case out != "":
		return generate(out, n, maxCount, zipf, uniform, seed)
	default:
		return fmt.Errorf("specify -o FILE to generate or -info FILE to inspect")
	}
}

func generate(path string, n, maxCount int, zipf float64, uniform bool, seed int64) error {
	gen := trace.NewGenerator(seed)
	var flows []trace.Flow
	if uniform {
		flows = gen.UniformMultiset(n, maxCount)
	} else {
		flows = gen.Multiset(n, maxCount, zipf)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, flows); err != nil {
		return err
	}
	total := 0
	for _, fl := range flows {
		total += fl.Count
	}
	fmt.Printf("wrote %s: %d distinct flows, %d packets (seed %d)\n", path, len(flows), total, seed)
	return nil
}

func printInfo(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	flows, err := trace.Read(f)
	if err != nil {
		return err
	}
	total, max := 0, 0
	hist := map[int]int{}
	for _, fl := range flows {
		total += fl.Count
		if fl.Count > max {
			max = fl.Count
		}
		hist[fl.Count]++
	}
	fmt.Printf("%s: %d distinct flows, %d packets, max multiplicity %d\n",
		path, len(flows), total, max)
	if len(flows) > 0 {
		fmt.Printf("first flow: %s ×%d\n", flows[0].ID, flows[0].Count)
		fmt.Printf("singletons: %d (%.1f%%)\n", hist[1], 100*float64(hist[1])/float64(len(flows)))
	}
	return nil
}

// importCSV converts a CSV flow list to the binary trace format.
func importCSV(csvPath, outPath string) error {
	if outPath == "" {
		return fmt.Errorf("-from-csv needs -o FILE")
	}
	in, err := os.Open(csvPath)
	if err != nil {
		return err
	}
	defer in.Close()
	flows, err := trace.ParseCSV(in)
	if err != nil {
		return err
	}
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := trace.Write(out, flows); err != nil {
		return err
	}
	fmt.Printf("imported %d flows from %s into %s\n", len(flows), csvPath, outPath)
	return nil
}

// exportCSV converts a binary trace to CSV.
func exportCSV(binPath, csvPath string) error {
	if binPath == "" {
		return fmt.Errorf("-to-csv needs -info FILE as the source trace")
	}
	in, err := os.Open(binPath)
	if err != nil {
		return err
	}
	defer in.Close()
	flows, err := trace.Read(in)
	if err != nil {
		return err
	}
	out, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := trace.WriteCSV(out, flows); err != nil {
		return err
	}
	fmt.Printf("exported %d flows from %s to %s\n", len(flows), binPath, csvPath)
	return nil
}
