package server

import (
	"net/http"
	"time"

	"shbf/internal/analytic"
)

// Stats is the /v1/stats response: per-filter occupancy and estimated
// accuracy from the paper's formulas (internal/analytic), plus served
// query counters.
type Stats struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Queries       map[string]uint64 `json:"queries"`
	Membership    MembershipStats   `json:"membership"`
	Association   AssociationStats  `json:"association"`
	Multiplicity  MultiplicityStats `json:"multiplicity"`
}

// ShardOccupancy is one shard's load in any of the three filters.
type ShardOccupancy struct {
	// N is the shard's element count; for association shards it is
	// n1 + n2 (distinct per set).
	N int `json:"n"`
	// FillRatio is the fraction of set bits in the shard's query array.
	FillRatio float64 `json:"fill_ratio"`
	// EstimatedFPR is the shard's predicted error rate: membership FPR
	// (Equation 1), association phantom-candidate probability, or
	// multiplicity non-member error rate (1 − CR). Omitted where not
	// defined.
	EstimatedFPR float64 `json:"estimated_fpr,omitempty"`
}

// MembershipStats describes the sharded ShBF_M.
type MembershipStats struct {
	Shards       int              `json:"shards"`
	TotalBits    int              `json:"total_bits"`
	K            int              `json:"k"`
	N            int              `json:"n"`
	FillRatio    float64          `json:"fill_ratio"`
	EstimatedFPR float64          `json:"estimated_fpr"`
	PerShard     []ShardOccupancy `json:"per_shard"`
}

// AssociationStats describes the sharded CShBF_A.
type AssociationStats struct {
	Shards    int     `json:"shards"`
	TotalBits int     `json:"total_bits"`
	K         int     `json:"k"`
	N1        int     `json:"n1"`
	N2        int     `json:"n2"`
	FillRatio float64 `json:"fill_ratio"`
	// ClearProb is the probability a union-member gets a single-region
	// answer at the paper's optimal sizing, (1−0.5^k)².
	ClearProb float64 `json:"clear_prob"`
	// PhantomProb is the probability a candidate region is a phantom,
	// at current occupancy.
	PhantomProb float64          `json:"phantom_prob"`
	PerShard    []ShardOccupancy `json:"per_shard"`
}

// MultiplicityStats describes the sharded CShBF_X.
type MultiplicityStats struct {
	Shards    int     `json:"shards"`
	TotalBits int     `json:"total_bits"`
	K         int     `json:"k"`
	C         int     `json:"c"`
	N         int     `json:"n"`
	FillRatio float64 `json:"fill_ratio"`
	// CorrectRateNonMember is the probability a non-member reports
	// count 0 at current occupancy (Equation 26's complement).
	CorrectRateNonMember float64          `json:"correct_rate_non_member"`
	PerShard             []ShardOccupancy `json:"per_shard"`
}

// Snapshot gathers the current stats (exported for tests and for
// embedding shbfd in other processes).
func (s *Server) Snapshot() Stats {
	st := Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Queries: map[string]uint64{
			"membership_add":      s.stats.membershipAdd.Load(),
			"membership_contains": s.stats.membershipContains.Load(),
			"association_update":  s.stats.associationUpdate.Load(),
			"association_query":   s.stats.associationQuery.Load(),
			"multiplicity_update": s.stats.multiplicityUpdate.Load(),
			"multiplicity_query":  s.stats.multiplicityQuery.Load(),
			"snapshots":           s.stats.snapshots.Load(),
		},
	}

	mem := s.mem.ShardStats()
	ms := MembershipStats{Shards: len(mem), PerShard: make([]ShardOccupancy, len(mem))}
	fprSum := 0.0
	for i, sh := range mem {
		fpr := analytic.FPRShBFM(sh.Bits, sh.N, float64(sh.K), sh.MaxOffset)
		ms.TotalBits += sh.Bits
		ms.K = sh.K
		ms.N += sh.N
		ms.FillRatio += sh.FillRatio
		fprSum += fpr
		ms.PerShard[i] = ShardOccupancy{N: sh.N, FillRatio: sh.FillRatio, EstimatedFPR: fpr}
	}
	ms.FillRatio /= float64(len(mem))
	// A negative probe routes to one shard, so the served FPR is the
	// mean of the per-shard rates.
	ms.EstimatedFPR = fprSum / float64(len(mem))
	st.Membership = ms

	as := AssociationStats{}
	ash := s.assoc.ShardStats()
	as.Shards = len(ash)
	as.PerShard = make([]ShardOccupancy, len(ash))
	phantomSum := 0.0
	for i, sh := range ash {
		// nDistinct per shard is at most n1+n2; the phantom formula
		// needs the union size, which the tables don't expose per
		// overlap, so n1+n2 is a (slightly pessimistic) upper bound.
		phantom := analytic.PhantomProb(sh.Bits, sh.N1+sh.N2, sh.K)
		as.TotalBits += sh.Bits
		as.K = sh.K
		as.N1 += sh.N1
		as.N2 += sh.N2
		as.FillRatio += sh.FillRatio
		phantomSum += phantom
		as.PerShard[i] = ShardOccupancy{N: sh.N1 + sh.N2, FillRatio: sh.FillRatio, EstimatedFPR: phantom}
	}
	as.FillRatio /= float64(len(ash))
	as.PhantomProb = phantomSum / float64(len(ash))
	as.ClearProb = analytic.ClearProbShBFA(as.K)
	st.Association = as

	xs := MultiplicityStats{}
	xsh := s.mult.ShardStats()
	xs.Shards = len(xsh)
	xs.PerShard = make([]ShardOccupancy, len(xsh))
	crSum := 0.0
	for i, sh := range xsh {
		cr := analytic.CRNonMember(sh.Bits, max(sh.N, 0), sh.K, sh.C)
		xs.TotalBits += sh.Bits
		xs.K = sh.K
		xs.C = sh.C
		if sh.N < 0 || xs.N < 0 {
			xs.N = -1 // unsafe-mode sentinel propagates, as in Multiplicity.N
		} else {
			xs.N += sh.N
		}
		xs.FillRatio += sh.FillRatio
		crSum += cr
		xs.PerShard[i] = ShardOccupancy{N: sh.N, FillRatio: sh.FillRatio, EstimatedFPR: 1 - cr}
	}
	xs.FillRatio /= float64(len(xsh))
	xs.CorrectRateNonMember = crSum / float64(len(xsh))
	st.Multiplicity = xs

	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}
