package experiment

import (
	"fmt"
	"math"

	"shbf/internal/analytic"
	"shbf/internal/core"
	"shbf/internal/memmodel"
)

// RunCostModelTable renders the paper's Section 3.3 architecture
// argument as numbers: with the query-side array B in SRAM (~1 ns per
// access) and the update-side structures in DRAM (~50 ns), per-query
// and per-update latencies are dominated by how many accesses each
// scheme needs. The access counts come from the analytic models
// validated against measurement in Figures 8/10(b)/11(b); the
// latencies apply memmodel.DefaultCostModel.
func RunCostModelTable(cfg Config) *Table {
	const k = 8
	n := cfg.MultisetSize
	if n < 1000 {
		n = 1000
	}
	nf := float64(n)
	m := int(nf * k / math.Ln2)
	model := memmodel.DefaultCostModel()

	tab := &Table{
		ID: "costmodel",
		Title: fmt.Sprintf("SRAM/DRAM latency model (m=%d, n=%d, k=%d, SRAM %v, DRAM %v)",
			m, n, k, model.SRAMAccess, model.DRAMAccess),
		Columns: []string{"scheme", "query accesses (SRAM)", "query latency",
			"update accesses (DRAM)", "update latency"},
	}

	memberMix := 0.5
	rows := []struct {
		name      string
		queryAcc  float64
		updateAcc int
	}{
		{"BF / CBF", analytic.ExpectedAccessesBF(m, n, k, memberMix), k},
		{"ShBF_M / CShBF_M", analytic.ExpectedAccessesShBFM(m, n, k, core.DefaultMaxOffset, memberMix), k / 2},
		{"ShBF_A (k accesses)", analytic.ExpectedAccessesShBFA(k), k},
		{"ShBF_X / CShBF_X", analytic.ExpectedAccessesShBFX(m, n, k, 57, memberMix, memmodel.WordBits), 2 * k},
	}
	for _, r := range rows {
		q := int(math.Ceil(r.queryAcc))
		tab.AddRow(r.name,
			fmt.Sprintf("%.2f", r.queryAcc),
			model.QueryCost(q).String(),
			fmt.Sprintf("%d", r.updateAcc),
			model.UpdateCost(0, r.updateAcc).String())
	}
	tab.Notes = append(tab.Notes,
		"queries touch only the on-chip B; updates touch the off-chip C (and the ShBF_X hash table), which is why the split makes wire-speed queries feasible (paper §3.3, §5.3, Figure 5)")
	return tab
}
