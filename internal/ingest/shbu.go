// Package ingest implements the streaming ingest tier: ShBU, a
// self-describing fire-and-forget UDP datagram format, the edge agent
// that pre-aggregates keys into local filters and flushes them
// upstream, and the receiver-side sequence accounting that turns a
// lossy transport into measured loss.
//
// The tier exists because the paper's filters are unions: a shard
// Bloom filter built at the edge from ten thousand raw keys and
// shipped as one ShBE envelope costs O(filter bits) on the wire
// instead of O(keys), and merging it at the daemon (bitwise OR for
// membership, counter-wise saturating add for multiplicity) is
// idempotent at the query level — exactly the property an unreliable,
// at-least-zero-times transport like UDP needs. Datagrams carry either
// a packed add-batch (small flushes, low latency) or a fragment of a
// flushed envelope (large flushes, amortized wire cost); every
// datagram is sequence-numbered per source so the receiver can account
// for loss, reordering and duplication without any return channel.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"

	"shbf/internal/wire"
)

// Wire layout. Every datagram is one UDP payload:
//
//	magic     "ShBU"      4 bytes
//	version   1           1 byte
//	type      1|2         1 byte   (add-batch | envelope fragment)
//	nsLen                 1 byte
//	reserved  0           1 byte
//	source                8 bytes  LE  (agent identity, random per process)
//	seq                   8 bytes  LE  (per-source, 1 per datagram)
//	namespace             nsLen bytes
//
// followed by the type-specific body. An add-batch body is exactly one
// ShBP packed-keys block (wire.AppendPackedKeys). A fragment body is
//
//	flushID               8 bytes  LE  (per-source, 1 per envelope flush)
//	fragIndex             2 bytes  LE
//	fragCount             2 bytes  LE
//	envLen                4 bytes  LE  (total envelope bytes)
//	fragOffset            4 bytes  LE
//	fragLen               2 bytes  LE  (must equal the remaining bytes —
//	                                   a truncated fragment must never
//	                                   pass as a valid shorter one)
//	bytes                 fragLen bytes
//
// Nothing in the format needs a reply: a receiver can apply, account
// or drop every datagram on its own, which is what lets agents stay
// fire-and-forget.

const (
	// Magic starts every ShBU datagram.
	Magic = "ShBU"
	// Version is the only wire version this package speaks.
	Version = 1

	// TypeAddBatch marks a datagram carrying a packed key batch to add
	// to the namespace's membership filter.
	TypeAddBatch = 1
	// TypeEnvelopeFrag marks a datagram carrying one fragment of a
	// flushed ShBE envelope, union-merged once reassembled.
	TypeEnvelopeFrag = 2

	// MaxDatagram is the largest payload this package will encode or
	// decode: the IPv4 UDP maximum (65535 − 8 UDP − 20 IP).
	MaxDatagram = 65507

	// headerLen is the fixed header before the namespace bytes.
	headerLen = 4 + 1 + 1 + 1 + 1 + 8 + 8
	// fragHeaderLen is the fragment body's fixed prefix.
	fragHeaderLen = 8 + 2 + 2 + 4 + 4 + 2

	// MaxEnvelope bounds the total envelope length a fragment may
	// declare, capping what a receiver will buffer for reassembly.
	MaxEnvelope = 1 << 26 // 64 MiB
)

// Decode errors. ErrBadDatagram tags every malformed input;
// receivers count them as DropDecode and move on.
var ErrBadDatagram = errors.New("ingest: bad ShBU datagram")

// Datagram is one decoded ShBU message.
type Datagram struct {
	Type      byte
	Source    uint64
	Seq       uint64
	Namespace string

	// Add-batch payload (TypeAddBatch).
	KeyWidth int // fixed key width, 0 = variable
	Keys     [][]byte

	// Envelope-fragment payload (TypeEnvelopeFrag).
	FlushID    uint64
	FragIndex  int
	FragCount  int
	EnvLen     int // total envelope bytes across all fragments
	FragOffset int
	Frag       []byte
}

// Append encodes d onto dst and returns the extended slice. The
// result must fit MaxDatagram; the namespace must fit one byte of
// length.
func Append(dst []byte, d *Datagram) ([]byte, error) {
	if len(d.Namespace) > 255 {
		return dst, fmt.Errorf("ingest: namespace %d bytes, max 255", len(d.Namespace))
	}
	start := len(dst)
	dst = append(dst, Magic...)
	dst = append(dst, Version, d.Type, byte(len(d.Namespace)), 0)
	dst = binary.LittleEndian.AppendUint64(dst, d.Source)
	dst = binary.LittleEndian.AppendUint64(dst, d.Seq)
	dst = append(dst, d.Namespace...)
	switch d.Type {
	case TypeAddBatch:
		var err error
		dst, err = wire.AppendPackedKeys(dst, d.KeyWidth, d.Keys)
		if err != nil {
			return dst[:start], err
		}
	case TypeEnvelopeFrag:
		if d.FragCount < 1 || d.FragCount > 0xffff || d.FragIndex < 0 || d.FragIndex >= d.FragCount {
			return dst[:start], fmt.Errorf("ingest: fragment %d of %d out of range", d.FragIndex, d.FragCount)
		}
		if d.EnvLen < 0 || d.EnvLen > MaxEnvelope {
			return dst[:start], fmt.Errorf("ingest: envelope length %d out of range [0, %d]", d.EnvLen, MaxEnvelope)
		}
		if d.FragOffset < 0 || d.FragOffset+len(d.Frag) > d.EnvLen {
			return dst[:start], fmt.Errorf("ingest: fragment [%d, %d) outside envelope of %d bytes",
				d.FragOffset, d.FragOffset+len(d.Frag), d.EnvLen)
		}
		if len(d.Frag) > 0xffff {
			return dst[:start], fmt.Errorf("ingest: fragment %d bytes exceeds %d", len(d.Frag), 0xffff)
		}
		dst = binary.LittleEndian.AppendUint64(dst, d.FlushID)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(d.FragIndex))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(d.FragCount))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(d.EnvLen))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(d.FragOffset))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(d.Frag)))
		dst = append(dst, d.Frag...)
	default:
		return dst[:start], fmt.Errorf("ingest: unknown datagram type %d", d.Type)
	}
	if len(dst)-start > MaxDatagram {
		n := len(dst) - start
		return dst[:start], fmt.Errorf("ingest: datagram %d bytes exceeds %d", n, MaxDatagram)
	}
	return dst, nil
}

// Decode parses one complete ShBU datagram. The input must be exactly
// one datagram — UDP preserves message boundaries, so trailing bytes
// mean corruption, not framing. The returned Datagram's Keys and Frag
// alias data.
func Decode(data []byte) (*Datagram, error) {
	if len(data) > MaxDatagram {
		return nil, fmt.Errorf("%w: %d bytes exceeds %d", ErrBadDatagram, len(data), MaxDatagram)
	}
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes, want ≥ %d", ErrBadDatagram, len(data), headerLen)
	}
	if string(data[:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadDatagram, data[:4])
	}
	if data[4] != Version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrBadDatagram, data[4], Version)
	}
	d := &Datagram{Type: data[5]}
	nsLen := int(data[6])
	if data[7] != 0 {
		return nil, fmt.Errorf("%w: reserved byte %d", ErrBadDatagram, data[7])
	}
	d.Source = binary.LittleEndian.Uint64(data[8:])
	d.Seq = binary.LittleEndian.Uint64(data[16:])
	if len(data) < headerLen+nsLen {
		return nil, fmt.Errorf("%w: truncated namespace", ErrBadDatagram)
	}
	d.Namespace = string(data[headerLen : headerLen+nsLen])
	body := data[headerLen+nsLen:]
	switch d.Type {
	case TypeAddBatch:
		keys, width, rest, err := wire.DecodePackedKeys(nil, body)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadDatagram, err)
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes after key block", ErrBadDatagram, len(rest))
		}
		d.Keys, d.KeyWidth = keys, width
	case TypeEnvelopeFrag:
		if len(body) < fragHeaderLen {
			return nil, fmt.Errorf("%w: fragment header %d bytes, want ≥ %d", ErrBadDatagram, len(body), fragHeaderLen)
		}
		d.FlushID = binary.LittleEndian.Uint64(body)
		d.FragIndex = int(binary.LittleEndian.Uint16(body[8:]))
		d.FragCount = int(binary.LittleEndian.Uint16(body[10:]))
		d.EnvLen = int(binary.LittleEndian.Uint32(body[12:]))
		d.FragOffset = int(binary.LittleEndian.Uint32(body[16:]))
		fragLen := int(binary.LittleEndian.Uint16(body[20:]))
		d.Frag = body[fragHeaderLen:]
		if len(d.Frag) != fragLen {
			return nil, fmt.Errorf("%w: fragment declares %d bytes, carries %d (truncated or padded datagram)",
				ErrBadDatagram, fragLen, len(d.Frag))
		}
		if d.FragCount < 1 {
			return nil, fmt.Errorf("%w: zero fragment count", ErrBadDatagram)
		}
		if d.FragIndex >= d.FragCount {
			return nil, fmt.Errorf("%w: fragment %d of %d", ErrBadDatagram, d.FragIndex, d.FragCount)
		}
		if d.EnvLen > MaxEnvelope {
			return nil, fmt.Errorf("%w: envelope length %d exceeds %d", ErrBadDatagram, d.EnvLen, MaxEnvelope)
		}
		if d.FragOffset+len(d.Frag) > d.EnvLen {
			return nil, fmt.Errorf("%w: fragment [%d, %d) outside envelope of %d bytes",
				ErrBadDatagram, d.FragOffset, d.FragOffset+len(d.Frag), d.EnvLen)
		}
		if len(d.Frag) == 0 && d.EnvLen != 0 {
			return nil, fmt.Errorf("%w: empty fragment of a %d-byte envelope", ErrBadDatagram, d.EnvLen)
		}
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadDatagram, d.Type)
	}
	return d, nil
}
