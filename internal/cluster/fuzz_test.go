package cluster

import (
	"encoding/json"
	"testing"
)

// FuzzClusterMapDecode drives Decode with hostile map documents. The
// invariant under fuzz: Decode either rejects, or returns a map whose
// invariants hold well enough that routing cannot panic — RangeFor
// resolves every probe point and the resolved range's primary owner is
// a known node. Seeds cover the operator mistakes the validator exists
// for: truncation, overlapping and descending ranges, duplicate node
// IDs, a gap at the bottom of the ring, and replication wider than the
// node set.
func FuzzClusterMapDecode(f *testing.F) {
	valid, err := (&Map{
		Version:     1,
		Replication: 2,
		Nodes: []Node{
			{ID: "n1", Addr: "a:1"},
			{ID: "n2", Addr: "a:2"},
			{ID: "n3", Addr: "a:3"},
		},
		Ranges: []Range{
			{Start: 0, Owners: []string{"n1", "n2"}},
			{Start: 1 << 63, Owners: []string{"n2", "n3"}},
		},
	}).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/3]) // truncated mid-document
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"replication":1,"nodes":[{"id":"a","addr":"x"},{"id":"a","addr":"y"}],"ranges":[{"start":0,"owners":["a"]}]}`))                                              // duplicate node id
	f.Add([]byte(`{"version":1,"replication":1,"nodes":[{"id":"a","addr":"x"}],"ranges":[{"start":0,"owners":["a"]},{"start":0,"owners":["a"]}]}`))                                         // overlapping ranges
	f.Add([]byte(`{"version":1,"replication":1,"nodes":[{"id":"a","addr":"x"}],"ranges":[{"start":5,"owners":["a"]},{"start":2,"owners":["a"]}]}`))                                         // descending + gap at 0
	f.Add([]byte(`{"version":1,"replication":3,"nodes":[{"id":"a","addr":"x"}],"ranges":[{"start":0,"owners":["a","a","a"]}]}`))                                                            // replication > nodes, owner repeated
	f.Add([]byte(`{"version":18446744073709551615,"replication":1,"nodes":[{"id":"a","addr":"x"}],"ranges":[{"start":18446744073709551615,"owners":["a"]}]}`))                              // extreme values
	f.Add([]byte(`{"version":1,"replication":1,"nodes":[{"id":"a","addr":"x"},{"id":"b","addr":"y"}],"ranges":[{"start":0,"owners":["a"]},{"start":9223372036854775808,"owners":["b"]}]}`)) // valid 2-node split

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted maps must be re-encodable and must route every probe
		// point to a known node without panicking.
		out, err := m.Encode()
		if err != nil {
			t.Fatalf("accepted map does not re-encode: %v", err)
		}
		var echo Map
		if err := json.Unmarshal(out, &echo); err != nil {
			t.Fatalf("re-encoded map is not JSON: %v", err)
		}
		for _, v := range []uint64{0, 1, 1 << 31, 1 << 62, 1<<64 - 1} {
			r := m.RangeFor(v)
			if r == nil || len(r.Owners) == 0 {
				t.Fatalf("RangeFor(%#x) = %+v on accepted map", v, r)
			}
			if m.NodeByID(r.Owners[0]) == nil {
				t.Fatalf("RangeFor(%#x) primary %q is not a node", v, r.Owners[0])
			}
		}
	})
}
