// Package client is the native Go client for the shbfd daemon: the
// same query surfaces as the shbf library — [Set], [Counter],
// [Associator] and a [Window] rotation handle, satisfying shbf.Set,
// shbf.Counter/shbf.Updatable, shbf.Associator and shbf.Windowed — so
// callers swap a local filter for a remote daemon (or back) without
// changing query code:
//
//	c, err := client.Dial("shbp://filters.internal:8138")
//	defer c.Close()
//	var set shbf.Set = c.Namespace("tenant-a").Set()
//	set.AddAll(keys)
//	hits := set.ContainsAll(nil, keys)
//
// Two transports speak to the same daemon and are selected by the
// Dial target:
//
//   - "shbp://host:port" (or a bare "host:port") uses ShBP, the
//     daemon's length-prefixed binary batch protocol (internal/wire,
//     shbfd's -shbp-addr listener). Batches encode as packed
//     fixed-width keys when all keys share a length; decode on the
//     daemon feeds the batch filter paths directly. This is the
//     transport for serving-path use.
//   - "http://host:port" (or https) uses the /v2 HTTP/JSON API —
//     convenient through proxies and LBs, and the only transport for
//     ops tooling that wants readable wire traffic. Keys travel
//     base64-encoded.
//
// Every handle addresses one namespace (tenant): a logical trio of
// membership, association and multiplicity filters with its own
// geometry and window policy. [Client.CreateNamespace],
// [Client.DeleteNamespace] and [Client.Namespaces] manage tenants on
// either transport.
//
// # Errors and interface parity
//
// The library interfaces have error-less scalar methods (shbf.Set.Add,
// shbf.Counter.Count, ...), so the remote handles follow a sticky-
// error convention: a transport failure inside an error-less method
// records the first error on the handle ([Set.Err], [Counter.Err],
// [Associator.Err]) and returns the zero answer (false, 0, no-region).
// Serving paths should prefer the batch methods, which return errors
// directly. A batch update that fails mid-way reports the applied
// prefix via [*Error]'s Applied field, as the HTTP API does.
//
// Handles are safe for concurrent use; the binary transport serializes
// frames on one connection, so run one Client per connection's worth
// of desired parallelism. Failed connections are redialed on the next
// call; by default requests are never auto-retried — a lost response
// may have applied its updates.
//
// # Deadlines and retries
//
// [Client.WithContext] derives a handle whose calls honor a
// context's deadline and cancellation on both transports (the binary
// transport maps them onto connection read/write deadlines), so a
// hung daemon costs a bounded wait instead of a stuck goroutine.
// [Client.WithRetry] opts in to automatic retries — capped
// exponential backoff with jitter, applied only to idempotent
// operations and only on transport failures or daemon overload
// ([IsOverloaded]); counting updates are never retried, because a
// lost response may have applied its increments. See RetryPolicy.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"shbf/internal/server"
	"shbf/internal/wire"
)

// NamespaceConfig is the tenant-creation shape accepted by
// [Client.CreateNamespace]: a name plus per-tenant overrides of the
// daemon's base geometry (zero-valued fields inherit the daemon's
// flags). It is the same document POST /v2/namespaces accepts.
type NamespaceConfig = server.NamespaceConfig

// NamespaceInfo is one tenant's summary, as returned by
// [Client.Namespaces].
type NamespaceInfo = server.NamespaceInfo

// Stats is a namespace's occupancy/accuracy snapshot, as returned by
// [Namespace.Stats] — the same document GET /v2/namespaces/{ns}/stats
// serves.
type Stats = server.Stats

// Error is a daemon-reported failure: the wire status, the daemon's
// message, and — for batch updates — the number of updates applied
// before the failure (earlier updates stay applied; the client can
// resume from Applied).
type Error struct {
	// Status is the wire status code (wire.Status* values; HTTP
	// responses are mapped onto the same codes).
	Status byte
	// Msg is the daemon's error message.
	Msg string
	// Applied is the mid-batch split point for failed updates.
	Applied uint64
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("shbfd: %s: %s", wire.StatusName(e.Status), e.Msg)
}

// IsConflict reports whether err is a daemon conflict: a capacity
// condition (count overflow, counter saturation, deleting an absent
// element), a rotate against a non-windowed namespace, or creating a
// namespace that exists.
func IsConflict(err error) bool {
	var e *Error
	return errors.As(err, &e) && e.Status == wire.StatusConflict
}

// IsNotFound reports whether err names an unknown namespace.
func IsNotFound(err error) bool {
	var e *Error
	return errors.As(err, &e) && e.Status == wire.StatusNotFound
}

// IsOverloaded reports whether err is daemon admission control
// shedding the request — a tenant's rate quota, the daemon's memory
// ceiling, or the binary listener's in-flight frame cap (HTTP 429 /
// wire StatusOverloaded). The request was not applied; it is safe to
// retry after a backoff, which [Client.WithRetry] automates.
func IsOverloaded(err error) bool {
	var e *Error
	return errors.As(err, &e) && e.Status == wire.StatusOverloaded
}

// transport is the per-protocol round trip: fill resp from req,
// returning an error only for transport-level failures (daemon-
// reported failures travel in resp.Status). ctx bounds the exchange:
// both transports honor its deadline and cancellation.
type transport interface {
	roundTrip(ctx context.Context, req *wire.Request, resp *wire.Response) error
	close() error
}

// Client is a connection to one shbfd daemon over one transport. Safe
// for concurrent use. The zero retry/context configuration runs every
// call exactly once with no deadline; derive bounded or retrying
// handles with [Client.WithContext] and [Client.WithRetry].
type Client struct {
	t     transport
	ctx   context.Context // nil = context.Background()
	retry *RetryPolicy    // nil = never retry
	stats *clientStats    // shared by every derived handle; see Stats
}

// WithContext returns a handle sharing this client's connection whose
// calls are bounded by ctx: its deadline and cancellation apply to
// every round trip (and to retry backoff waits). The original client
// is unchanged — derive per-request handles freely:
//
//	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
//	defer cancel()
//	err := c.WithContext(ctx).Ping()
func (c *Client) WithContext(ctx context.Context) *Client {
	cc := *c
	cc.ctx = ctx
	return &cc
}

// WithRetry returns a handle sharing this client's connection that
// automatically retries idempotent operations per p. The original
// client is unchanged and keeps the default never-retry behavior.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	cc := *c
	cc.retry = &p
	return &cc
}

// context returns the client's bound context (Background if unset).
func (c *Client) context() context.Context {
	if c.ctx != nil {
		return c.ctx
	}
	return context.Background()
}

// Dial connects to a daemon. The target selects the transport:
// "shbp://host:port" or a bare "host:port" speaks the binary protocol
// to shbfd's -shbp-addr listener; "http://..." and "https://..."
// speak JSON to the -addr listener. The binary transport dials
// eagerly, so a down daemon fails here rather than on first use.
func Dial(target string) (*Client, error) {
	switch {
	case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"):
		return &Client{t: newHTTPTransport(target, nil), stats: new(clientStats)}, nil
	case strings.HasPrefix(target, "shbp://"):
		return dialBinary(strings.TrimPrefix(target, "shbp://"))
	case strings.Contains(target, "://"):
		return nil, fmt.Errorf("client: unsupported scheme in %q (want shbp:// or http(s)://)", target)
	default:
		return dialBinary(target)
	}
}

// DialHTTP is Dial for an HTTP target with a caller-supplied
// http.Client (timeouts, TLS config, instrumented transports).
func DialHTTP(baseURL string, hc *http.Client) (*Client, error) {
	if !strings.HasPrefix(baseURL, "http://") && !strings.HasPrefix(baseURL, "https://") {
		return nil, fmt.Errorf("client: %q is not an http(s) URL", baseURL)
	}
	return &Client{t: newHTTPTransport(baseURL, hc), stats: new(clientStats)}, nil
}

// Close releases the transport (idle HTTP connections, the binary
// connection). Handles created from the client stop working.
func (c *Client) Close() error { return c.t.close() }

// Ping checks daemon liveness over the client's transport.
func (c *Client) Ping() error {
	_, err := c.do(&wire.Request{Op: wire.OpPing})
	return err
}

// Metrics fetches the daemon's metrics scrape in Prometheus text
// exposition format — GET /metrics over HTTP, the metrics op over
// ShBP; both transports serve byte-identical scrapes. For this
// client's own counters, see [Client.Stats].
func (c *Client) Metrics() ([]byte, error) {
	resp, err := c.do(&wire.Request{Op: wire.OpMetrics})
	if err != nil {
		return nil, err
	}
	return resp.Blob, nil
}

// Namespace returns a handle on one tenant ("" addresses the default
// namespace). The namespace is not validated here; an unknown name
// surfaces as IsNotFound errors from the handle's methods.
func (c *Client) Namespace(name string) *Namespace {
	if name == "" {
		name = server.DefaultNamespace
	}
	return &Namespace{c: c, name: name}
}

// CreateNamespace creates a tenant. Creating an existing name is a
// conflict (IsConflict), not an upsert.
func (c *Client) CreateNamespace(cfg NamespaceConfig) error {
	blob, err := json.Marshal(cfg)
	if err != nil {
		return err
	}
	_, err = c.do(&wire.Request{Op: wire.OpNamespaceCreate, Namespace: cfg.Name, Blob: blob})
	return err
}

// DeleteNamespace deletes a tenant and its filters. The default
// namespace cannot be deleted.
func (c *Client) DeleteNamespace(name string) error {
	_, err := c.do(&wire.Request{Op: wire.OpNamespaceDelete, Namespace: name})
	return err
}

// Namespaces lists the daemon's tenants, sorted by name.
func (c *Client) Namespaces() ([]NamespaceInfo, error) {
	resp, err := c.do(&wire.Request{Op: wire.OpNamespaceList})
	if err != nil {
		return nil, err
	}
	var body struct {
		Namespaces []NamespaceInfo `json:"namespaces"`
	}
	if err := json.Unmarshal(resp.Blob, &body); err != nil {
		return nil, fmt.Errorf("client: decoding namespace list: %w", err)
	}
	return body.Namespaces, nil
}

// do runs one round trip — retried per the client's RetryPolicy when
// one is set — and lifts daemon-reported failures into *Error.
func (c *Client) do(req *wire.Request) (*wire.Response, error) {
	ctx := c.context()
	for attempt := 0; ; attempt++ {
		c.stats.request()
		var resp wire.Response
		err := c.t.roundTrip(ctx, req, &resp)
		if err == nil && resp.Status == wire.StatusOK {
			return &resp, nil
		}
		c.stats.error()
		if err == nil {
			err = &Error{Status: resp.Status, Msg: resp.Msg, Applied: resp.Applied}
		}
		if !c.retry.shouldRetry(req.Op, err, attempt) {
			var e *Error
			if errors.As(err, &e) {
				return &resp, err
			}
			return nil, err
		}
		if werr := c.retry.wait(ctx, attempt); werr != nil {
			// The context expired during backoff; the last real
			// failure is the useful error, not the wait's.
			return nil, err
		}
		c.stats.retry()
	}
}
