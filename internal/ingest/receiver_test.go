package ingest

import (
	"bytes"
	"testing"
)

// collectHandler applies batches and envelopes into plain maps — the
// reference "daemon" receiver tests converge against.
type collectHandler struct {
	keys      map[string]int
	envelopes [][]byte
	refuse    DropReason // when non-None, refuse everything with it
}

func newCollectHandler() *collectHandler {
	return &collectHandler{keys: map[string]int{}}
}

func (h *collectHandler) HandleBatch(ns string, keys [][]byte) DropReason {
	if h.refuse != DropNone {
		return h.refuse
	}
	for _, k := range keys {
		h.keys[string(k)]++
	}
	return DropNone
}

func (h *collectHandler) HandleEnvelope(ns string, env []byte) DropReason {
	if h.refuse != DropNone {
		return h.refuse
	}
	h.envelopes = append(h.envelopes, append([]byte(nil), env...))
	return DropNone
}

// encode builds one datagram's bytes or fails the test.
func encode(t *testing.T, d *Datagram) []byte {
	t.Helper()
	buf, err := Append(nil, d)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return buf
}

func batchDatagram(t *testing.T, source, seq uint64, keys ...string) []byte {
	t.Helper()
	bs := make([][]byte, len(keys))
	for i, k := range keys {
		bs[i] = []byte(k)
	}
	return encode(t, &Datagram{
		Type: TypeAddBatch, Source: source, Seq: seq, Namespace: "ns", Keys: bs,
	})
}

func TestReceiverAppliesAndAccounts(t *testing.T) {
	h := newCollectHandler()
	r := NewReceiver(h)
	for seq := uint64(1); seq <= 5; seq++ {
		if got := r.Process(batchDatagram(t, 9, seq, "a", "b")); got != DropNone {
			t.Fatalf("seq %d: %v", seq, got)
		}
	}
	if h.keys["a"] != 5 || h.keys["b"] != 5 {
		t.Fatalf("keys = %v", h.keys)
	}
	s := r.Stats()
	if s.ReceivedBatch != 5 || s.AppliedBatch != 5 || s.Lost != 0 || s.Reordered != 0 || s.Sources != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestReceiverLossReorderDuplicate(t *testing.T) {
	h := newCollectHandler()
	r := NewReceiver(h)
	// Source 5 sends seqs 1..10; 3 and 7 are dropped in flight, 4
	// arrives late (reordered), 8 arrives twice.
	order := []uint64{1, 2, 5, 4, 6, 8, 8, 9, 10}
	for _, seq := range order {
		r.Process(batchDatagram(t, 5, seq, "k"))
	}
	s := r.Stats()
	if s.Lost != 2 { // 3 and 7 of 1..10 never arrived
		t.Fatalf("lost = %d, want 2 (missing 3 and 7 of 1..10): %+v", s.Lost, s)
	}
	if s.Reordered != 1 {
		t.Fatalf("reordered = %d, want 1", s.Reordered)
	}
	if s.Dropped[DropDuplicate] != 1 {
		t.Fatalf("duplicates = %d, want 1", s.Dropped[DropDuplicate])
	}
	// The late arrival of 3 shrinks the loss gauge — the reason it is
	// a gauge and not a counter.
	r.Process(batchDatagram(t, 5, 3, "k"))
	if s = r.Stats(); s.Lost != 1 {
		t.Fatalf("lost after late arrival = %d, want 1", s.Lost)
	}
	if s.Reordered != 2 {
		t.Fatalf("reordered after late arrival = %d, want 2", s.Reordered)
	}
	if got := s.LossRatio(); got <= 0 || got >= 1 {
		t.Fatalf("loss ratio = %v", got)
	}
	// Nine unique datagrams arrived (1..10 minus the never-arrived 7),
	// each applied exactly once despite the duplicate and reorder.
	if h.keys["k"] != 9 {
		t.Fatalf("k applied %d times, want 9", h.keys["k"])
	}
}

func TestReceiverSeqWindowAgesOut(t *testing.T) {
	r := NewReceiver(newCollectHandler())
	r.Process(batchDatagram(t, 1, 1, "k"))
	r.Process(batchDatagram(t, 1, uint64(seqWindowBits)+10, "k"))
	// Sequence 1 is now far below the window: conservatively a
	// duplicate even though it was genuinely seen before.
	if got := r.Process(batchDatagram(t, 1, 1, "k")); got != DropDuplicate {
		t.Fatalf("below-window seq: %v, want DropDuplicate", got)
	}
}

func TestReceiverFragmentReassembly(t *testing.T) {
	h := newCollectHandler()
	r := NewReceiver(h)
	env := make([]byte, 1000)
	for i := range env {
		env[i] = byte(i)
	}
	frag := func(seq uint64, idx, count, off, n int) []byte {
		return encode(t, &Datagram{
			Type: TypeEnvelopeFrag, Source: 2, Seq: seq, Namespace: "ns",
			FlushID: 44, FragIndex: idx, FragCount: count,
			EnvLen: len(env), FragOffset: off, Frag: env[off : off+n],
		})
	}
	// Three fragments, delivered out of order, middle one twice.
	for _, d := range [][]byte{
		frag(1, 2, 3, 800, 200),
		frag(2, 0, 3, 0, 400),
		frag(3, 1, 3, 400, 400),
	} {
		if got := r.Process(d); got != DropNone {
			t.Fatalf("fragment: %v", got)
		}
	}
	if len(h.envelopes) != 1 || !bytes.Equal(h.envelopes[0], env) {
		t.Fatalf("reassembly produced %d envelopes", len(h.envelopes))
	}
	s := r.Stats()
	if s.MergeBytes != uint64(len(env)) {
		t.Fatalf("merge bytes = %d, want %d", s.MergeBytes, len(env))
	}
	if s.Assemblies != 0 {
		t.Fatalf("assemblies leaked: %d", s.Assemblies)
	}
	// A whole-flush resend under fresh sequence numbers reassembles
	// and re-applies (the union upstream makes that idempotent).
	for i, d := range [][]byte{
		frag(10, 0, 3, 0, 400), frag(11, 1, 3, 400, 400), frag(12, 2, 3, 800, 200),
	} {
		if got := r.Process(d); got != DropNone {
			t.Fatalf("resend fragment %d: %v", i, got)
		}
	}
	if len(h.envelopes) != 2 {
		t.Fatalf("resent flush applied %d envelopes, want 2", len(h.envelopes))
	}
}

func TestReceiverInconsistentFragmentsDropped(t *testing.T) {
	h := newCollectHandler()
	r := NewReceiver(h)
	mk := func(seq uint64, envLen int) []byte {
		return encode(t, &Datagram{
			Type: TypeEnvelopeFrag, Source: 3, Seq: seq, Namespace: "ns",
			FlushID: 1, FragIndex: 0, FragCount: 2,
			EnvLen: envLen, FragOffset: 0, Frag: make([]byte, 100),
		})
	}
	if got := r.Process(mk(1, 500)); got != DropNone {
		t.Fatalf("first fragment: %v", got)
	}
	// Same flush, contradicting envelope length: the assembly must be
	// destroyed, not completed from corrupt halves.
	if got := r.Process(mk(2, 700)); got != DropReassembly {
		t.Fatalf("contradicting fragment: %v, want DropReassembly", got)
	}
	if r.Stats().Assemblies != 0 {
		t.Fatal("corrupt assembly survived")
	}
	if len(h.envelopes) != 0 {
		t.Fatal("corrupt assembly completed")
	}
}

func TestReceiverHandlerDropsAreAccounted(t *testing.T) {
	h := newCollectHandler()
	h.refuse = DropRate
	r := NewReceiver(h)
	if got := r.Process(batchDatagram(t, 1, 1, "k")); got != DropRate {
		t.Fatalf("refused batch: %v", got)
	}
	s := r.Stats()
	if s.Dropped[DropRate] != 1 || s.AppliedBatch != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestReceiverGarbageIsDecodeDrop(t *testing.T) {
	r := NewReceiver(newCollectHandler())
	if got := r.Process([]byte("not a datagram")); got != DropDecode {
		t.Fatalf("garbage: %v", got)
	}
	if s := r.Stats(); s.Dropped[DropDecode] != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDropReasonLabels(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range DropReasons() {
		label := r.String()
		if label == "unknown" || seen[label] {
			t.Fatalf("reason %d: label %q", r, label)
		}
		seen[label] = true
	}
}
