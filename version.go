package shbf

// Version is the library and daemon release version, reported by
// `shbfd -version` and the shbf_build_info metric. Bump it with any
// release-worthy change to the serving surface.
const Version = "0.9.0"
