// Package flowkeys generates the deterministic 13-byte 5-tuple
// flow-ID workload shared by the perf suite's two faces —
// `cmd/shbench -perf` (the BENCH_*.json emitter) and the root
// package's Perf* benchmarks — so the two always measure identical
// keys and their numbers stay comparable.
package flowkeys

import "shbf/internal/hashing"

// KeyBytes is the element size: the paper's 13-byte 5-tuple flow ID.
const KeyBytes = 13

// Keys returns n deterministic 13-byte keys: one flat backing array
// (scalar benchmark bodies slice it directly, so the measurement is
// the operation's cost rather than a walk over slice headers) plus the
// [][]byte view the batch APIs take.
func Keys(n int) (flat []byte, keys [][]byte) {
	flat = make([]byte, n*KeyBytes)
	state := uint64(0x5b8f_bee5)
	for i := 0; i+8 <= len(flat); i += 8 {
		v := hashing.SplitMix64(&state)
		for b := 0; b < 8; b++ {
			flat[i+b] = byte(v >> (8 * b))
		}
	}
	keys = make([][]byte, n)
	for i := range keys {
		keys[i] = flat[i*KeyBytes : (i+1)*KeyBytes]
	}
	return flat, keys
}
