package sharded

import (
	"encoding"
	"encoding/binary"
	"fmt"
	"sync"

	"shbf/internal/core"
	"shbf/internal/hashing"
)

// This file holds the scaffolding shared by every sharded filter kind:
// the routed, lock-striped shard set and the snapshot wire format.
//
// A set[F] owns 2^p shards, each a core filter F behind its own
// cache-line-padded RWMutex. Routing rides the one-pass digest
// pipeline: every operation computes the key's hashing.KeyDigest once,
// routes on the digest's high lane (Digest.Shard), and hands the same
// digest to the shard filter's *Digest methods for probing — so the
// shard layer adds zero hash passes on top of the filter's single one.
// Routing cannot skew against bit positions: the shard index is a few
// raw lane bits while every probe position goes through a full
// per-function avalanche mix of both lanes. The digest seed is the
// tree-wide hashing.DigestSeed constant, so a snapshot taken by one
// process routes identically when loaded by another. The concrete
// wrappers — Filter, Association, Multiplicity — embed a set and add
// the kind-specific operations; anything that holds shard locks lives
// with them, the set only does routing, geometry, and
// (de)serialization.

// shardSeed derives the i-th shard's filter seed from the caller's
// base seed (core.ResolveSeed of the forwarded options). Each shard
// must hash differently or all shards would share false-positive
// patterns, and the base must contribute or varying the user seed
// would be a silent no-op.
func shardSeed(base uint64, i int) uint64 {
	return base + uint64(i)*0x9e3779b97f4a7c15 + 1
}

// ShardSeed exposes the shard-seed derivation to read-only consumers
// (the frozen encoder) that must reconstruct per-shard hash families
// from a filter's reported base seed.
func ShardSeed(base uint64, i int) uint64 { return shardSeed(base, i) }

// maxShards bounds construction the same way decodeSnapshot bounds
// decoding, and keeps roundPow2's doubling loop far from overflow.
const maxShards = 1 << 20

// entry is one lock-striped shard. The padding spaces entries a cache
// line apart so a writer bouncing one shard's lock does not invalidate
// its neighbours' lines.
type entry[F any] struct {
	mu sync.RWMutex
	f  F
	_  [40]byte
}

// set is the routed shard collection.
type set[F any] struct {
	shards []entry[F]
	mask   uint64
}

// roundPow2 rounds shardCount up to the next power of two, validating
// the count and the resulting per-shard bit budget.
func roundPow2(totalBits, shardCount int) (pow, perShard int, err error) {
	if shardCount < 1 {
		return 0, 0, fmt.Errorf("sharded: shard count %d must be ≥ 1", shardCount)
	}
	if shardCount > maxShards {
		return 0, 0, fmt.Errorf("sharded: shard count %d exceeds maximum %d", shardCount, maxShards)
	}
	pow = 1
	for pow < shardCount {
		pow *= 2
	}
	perShard = totalBits / pow
	if perShard < 64 {
		return 0, 0, fmt.Errorf("sharded: %d bits across %d shards leaves %d bits/shard (< 64)", totalBits, pow, perShard)
	}
	return pow, perShard, nil
}

// newSet builds a set of pow shards, constructing each filter with
// build(i).
func newSet[F any](pow int, build func(i int) (F, error)) (set[F], error) {
	s := set[F]{
		shards: make([]entry[F], pow),
		mask:   uint64(pow - 1),
	}
	for i := range s.shards {
		f, err := build(i)
		if err != nil {
			return set[F]{}, fmt.Errorf("sharded: building shard %d: %w", i, err)
		}
		s.shards[i].f = f
	}
	return s, nil
}

// forDigest routes an already-digested element to its shard.
func (s *set[F]) forDigest(d hashing.Digest) *entry[F] {
	return &s.shards[d.Shard(s.mask)]
}

// size returns the number of shards.
func (s *set[F]) size() int { return len(s.shards) }

// batchPlan is a batch of keys grouped by destination shard: the key
// indices routed to shard i are order[starts[i]:starts[i+1]]. Batch
// operations walk the plan shard by shard, taking each shard lock once
// per batch instead of once per key. Each key is digested exactly once
// while grouping; the plan retains the digests so the per-shard loops
// probe with them instead of re-hashing — one pass per key for the
// whole batch operation, routing included. Plans are pooled so the
// steady-state batch path does not allocate.
type batchPlan struct {
	shardOf []uint32
	digests []hashing.Digest
	starts  []int
	next    []int
	order   []int32
}

var planPool = sync.Pool{New: func() any { return new(batchPlan) }}

// keysFor returns the indices of the batch's keys routed to shard i.
func (p *batchPlan) keysFor(i int) []int32 {
	return p.order[p.starts[i]:p.starts[i+1]]
}

// release returns the plan's buffers to the pool; callers must not
// touch the plan afterwards.
func (p *batchPlan) release() { planPool.Put(p) }

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// batchRead runs query for every key, visiting each occupied shard
// once under its read lock and writing answers into dst (resized to
// len(keys)) at the keys' original positions. query receives the key
// and its plan-cached digest; digest-only filters ignore the key.
func batchRead[F, R any](s *set[F], dst []R, keys [][]byte, query func(F, []byte, hashing.Digest) R) []R {
	if cap(dst) < len(keys) {
		dst = make([]R, len(keys))
	}
	dst = dst[:len(keys)]
	p := s.group(keys)
	defer p.release()
	for i := range s.shards {
		idxs := p.keysFor(i)
		if len(idxs) == 0 {
			continue
		}
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, j := range idxs {
			dst[j] = query(sh.f, keys[j], p.digests[j])
		}
		sh.mu.RUnlock()
	}
	return dst
}

// batchWrite runs apply for every key, visiting each occupied shard
// once under its write lock. The first failure stops the batch — keys
// already applied stay applied — and the error reports the failing
// key's batch index.
func batchWrite[F any](s *set[F], keys [][]byte, apply func(F, []byte, hashing.Digest) error) error {
	p := s.group(keys)
	defer p.release()
	for i := range s.shards {
		idxs := p.keysFor(i)
		if len(idxs) == 0 {
			continue
		}
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, j := range idxs {
			if err := apply(sh.f, keys[j], p.digests[j]); err != nil {
				sh.mu.Unlock()
				return fmt.Errorf("sharded: key %d: %w", j, err)
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// group builds the shard-grouped plan for keys with a counting sort
// over shard indices (stable, so each shard sees its keys in batch
// order), digesting each key exactly once along the way. Release the
// plan when done.
func (s *set[F]) group(keys [][]byte) *batchPlan {
	p := planPool.Get().(*batchPlan)
	if cap(p.shardOf) < len(keys) {
		p.shardOf = make([]uint32, len(keys))
		p.digests = make([]hashing.Digest, len(keys))
		p.order = make([]int32, len(keys))
	}
	p.shardOf, p.digests, p.order = p.shardOf[:len(keys)], p.digests[:len(keys)], p.order[:len(keys)]
	p.starts = growInts(p.starts, len(s.shards)+1)
	p.next = growInts(p.next, len(s.shards))
	clear(p.starts)
	for i, e := range keys {
		d := hashing.KeyDigest(e)
		sh := uint32(d.Shard(s.mask))
		p.shardOf[i] = sh
		p.digests[i] = d
		p.starts[sh+1]++
	}
	for i := 1; i < len(p.starts); i++ {
		p.starts[i] += p.starts[i-1]
	}
	copy(p.next, p.starts)
	for i, sh := range p.shardOf {
		p.order[p.next[sh]] = int32(i)
		p.next[sh]++
	}
	return p
}

// sumLocked accumulates get across all shards, each read under its
// shard's read lock.
func (s *set[F]) sumLocked(get func(F) int) int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += get(sh.f)
		sh.mu.RUnlock()
	}
	return total
}

// meanLocked averages get across all shards, each read under its
// shard's read lock.
func (s *set[F]) meanLocked(get func(F) float64) float64 {
	sum := 0.0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		sum += get(sh.f)
		sh.mu.RUnlock()
	}
	return sum / float64(len(s.shards))
}

// --- snapshot wire format ------------------------------------------------
//
// 4-byte magic "ShBS", a version byte, a kind byte, the shard count as
// a uvarint, then one length-prefixed core-filter blob per shard (each
// blob is the shard filter's own MarshalBinary output, which embeds its
// full geometry and seed). Routing is derived from the compile-time
// hashing.DigestSeed, so the header needs no routing state: kind +
// shard blobs reconstruct the filter bit-for-bit.

const (
	snapVersion = 1

	shardKindMembership byte = iota + 1
	shardKindAssociation
	shardKindMultiplicity
	shardKindWindowMembership
	shardKindWindowAssociation
	shardKindWindowMultiplicity
)

// appendSnapshot serializes the set: header, then each shard under its
// read lock. Shards are locked one at a time, so the snapshot is
// per-shard consistent but not a global point-in-time cut; for a
// globally consistent image, pause writers first.
func appendSnapshot[F encoding.BinaryMarshaler](buf []byte, kind byte, s *set[F]) ([]byte, error) {
	buf = append(buf, 'S', 'h', 'B', 'S', snapVersion, kind)
	buf = binary.AppendUvarint(buf, uint64(len(s.shards)))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		blob, err := sh.f.MarshalBinary()
		sh.mu.RUnlock()
		if err != nil {
			return nil, fmt.Errorf("sharded: marshaling shard %d: %w", i, err)
		}
		buf = binary.AppendUvarint(buf, uint64(len(blob)))
		buf = append(buf, blob...)
	}
	return buf, nil
}

// checkShardSpecs verifies a decoded shard set's filters agree: every
// shard must report shard 0's spec up to the shard-seed derivation
// (seed_i = shardSeed(base, i) for the base recovered from shard 0).
// decodeSnapshot validates each shard blob independently, so without
// this cross-shard check a corrupt or spliced snapshot could assemble
// shards of divergent geometry — wrong routing for the classic kinds,
// and out-of-range ring aggregation for the window kinds.
func checkShardSpecs[F interface{ Spec() core.Spec }](s *set[F]) error {
	spec0 := s.shards[0].f.Spec()
	base := spec0.Seed - 1 // shardSeed(base, 0) = base + 1
	for i := range s.shards {
		want := spec0
		want.Seed = shardSeed(base, i)
		if spec := s.shards[i].f.Spec(); spec != want {
			return fmt.Errorf("sharded: shard %d spec %+v diverges from shard 0's %+v", i, spec, want)
		}
	}
	return nil
}

// decodeSnapshot parses a snapshot produced by appendSnapshot,
// rebuilding each shard filter with fresh (the zero-value constructor
// whose UnmarshalBinary replaces its state) and then cross-checking
// the shards against each other (checkShardSpecs).
func decodeSnapshot[F any, PF interface {
	*F
	encoding.BinaryUnmarshaler
	Spec() core.Spec
}](data []byte, kind byte) (set[PF], error) {
	if len(data) < 6 {
		return set[PF]{}, fmt.Errorf("sharded: truncated snapshot header")
	}
	if string(data[:4]) != "ShBS" {
		return set[PF]{}, fmt.Errorf("sharded: bad snapshot magic %q", data[:4])
	}
	if data[4] != snapVersion {
		return set[PF]{}, fmt.Errorf("sharded: unsupported snapshot version %d", data[4])
	}
	if data[5] != kind {
		return set[PF]{}, fmt.Errorf("sharded: wrong filter kind %d (want %d)", data[5], kind)
	}
	buf := data[6:]
	count, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return set[PF]{}, fmt.Errorf("sharded: truncated shard count")
	}
	buf = buf[sz:]
	if count == 0 || count > maxShards || count&(count-1) != 0 {
		return set[PF]{}, fmt.Errorf("sharded: implausible shard count %d", count)
	}
	s := set[PF]{
		shards: make([]entry[PF], count),
		mask:   count - 1,
	}
	for i := range s.shards {
		n, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return set[PF]{}, fmt.Errorf("sharded: truncated length of shard %d", i)
		}
		buf = buf[sz:]
		if uint64(len(buf)) < n {
			return set[PF]{}, fmt.Errorf("sharded: shard %d blob truncated", i)
		}
		f := PF(new(F))
		if err := f.UnmarshalBinary(buf[:n]); err != nil {
			return set[PF]{}, fmt.Errorf("sharded: decoding shard %d: %w", i, err)
		}
		s.shards[i].f = f
		buf = buf[n:]
	}
	if len(buf) != 0 {
		return set[PF]{}, fmt.Errorf("sharded: %d trailing bytes", len(buf))
	}
	if err := checkShardSpecs(&s); err != nil {
		return set[PF]{}, err
	}
	return s, nil
}
